"""Tests for the annotation substrate: agreement, perplexity, annotators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.annotation.agreement import (
    cohen_kappa,
    fleiss_kappa,
    percent_agreement,
    rating_matrix,
)
from repro.annotation.annotator import SimulatedAnnotator
from repro.annotation.guidelines import ANNOTATION_GUIDELINES, PERPLEXITY_RULES
from repro.annotation.perplexity import detect_dimensions, resolve_dominant
from repro.annotation.task import AnnotationTask, run_annotation_study
from repro.core.labels import DIMENSIONS, WellnessDimension


class TestRatingMatrix:
    def test_counts(self):
        matrix = rating_matrix([("a", "b"), ("a", "a")], ["a", "b"])
        assert matrix.tolist() == [[1, 1], [2, 0]]

    def test_unequal_raters_rejected(self):
        with pytest.raises(ValueError):
            rating_matrix([("a", "b"), ("a",)], ["a", "b"])

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError):
            rating_matrix([("a", "c")], ["a", "b"])

    def test_single_rater_rejected(self):
        with pytest.raises(ValueError):
            rating_matrix([("a",)], ["a"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rating_matrix([], ["a"])


class TestFleissKappa:
    def test_perfect_agreement(self):
        matrix = rating_matrix([("a", "a"), ("b", "b")], ["a", "b"])
        assert fleiss_kappa(matrix) == pytest.approx(1.0)

    def test_perfect_disagreement_negative(self):
        matrix = rating_matrix([("a", "b"), ("b", "a")], ["a", "b"])
        assert fleiss_kappa(matrix) < 0

    def test_single_category_degenerate(self):
        matrix = rating_matrix([("a", "a")], ["a"])
        assert fleiss_kappa(matrix) == 1.0

    def test_fleiss_worked_example(self):
        # The classic 10-subject / 14-rater / 5-category worked example;
        # published value kappa = 0.210.
        matrix = np.array(
            [
                [0, 0, 0, 0, 14], [0, 2, 6, 4, 2], [0, 0, 3, 5, 6],
                [0, 3, 9, 2, 0], [2, 2, 8, 1, 1], [7, 7, 0, 0, 0],
                [3, 2, 6, 3, 0], [2, 5, 3, 2, 2], [6, 5, 2, 1, 0],
                [0, 2, 2, 3, 7],
            ]
        )
        assert fleiss_kappa(matrix) == pytest.approx(0.210, abs=0.001)

    def test_uneven_raters_rejected(self):
        bad = np.array([[2, 0], [1, 0]])
        with pytest.raises(ValueError):
            fleiss_kappa(bad)

    def test_matches_cohen_for_two_raters_roughly(self):
        rng = np.random.default_rng(3)
        labels_a = rng.choice(["x", "y", "z"], size=200).tolist()
        labels_b = [
            a if rng.random() < 0.7 else rng.choice(["x", "y", "z"])
            for a in labels_a
        ]
        matrix = rating_matrix(list(zip(labels_a, labels_b)), ["x", "y", "z"])
        # Fleiss with 2 raters is Scott's pi; close to Cohen's kappa when
        # the marginals are similar.
        assert fleiss_kappa(matrix) == pytest.approx(
            cohen_kappa(labels_a, labels_b), abs=0.03
        )


class TestCohenAndAgreement:
    def test_cohen_perfect(self):
        assert cohen_kappa(["a", "b"], ["a", "b"]) == 1.0

    def test_cohen_chance_is_zero(self):
        # Independent raters with identical marginals -> kappa near 0.
        rng = np.random.default_rng(0)
        a = rng.choice(["x", "y"], size=4000).tolist()
        b = rng.choice(["x", "y"], size=4000).tolist()
        assert abs(cohen_kappa(a, b)) < 0.05

    def test_percent_agreement(self):
        assert percent_agreement(["a", "b", "c"], ["a", "b", "x"]) == pytest.approx(2 / 3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            percent_agreement(["a"], ["a", "b"])
        with pytest.raises(ValueError):
            cohen_kappa(["a"], ["a", "b"])

    @given(st.lists(st.sampled_from("ab"), min_size=1, max_size=50))
    def test_kappa_bounds(self, labels):
        assert cohen_kappa(labels, labels) == 1.0


class TestGuidelines:
    def test_seven_annotation_guidelines(self):
        assert len(ANNOTATION_GUIDELINES) == 7
        assert [g.number for g in ANNOTATION_GUIDELINES] == list(range(1, 8))

    def test_six_perplexity_rules(self):
        assert len(PERPLEXITY_RULES) == 6
        assert [r.number for r in PERPLEXITY_RULES] == list(range(1, 7))

    def test_rules_have_examples(self):
        for rule in PERPLEXITY_RULES:
            assert rule.example_text
            assert rule.example_resolution


class TestPerplexityEngine:
    def test_detects_vocational(self):
        evidence = detect_dimensions("my job and the money stress never stop")
        assert evidence[0].dimension is WellnessDimension.VOCATIONAL

    def test_detects_multiple(self):
        evidence = detect_dimensions(
            "my job drains me and i cannot sleep because of the anxiety"
        )
        dims = {e.dimension for e in evidence}
        assert WellnessDimension.VOCATIONAL in dims
        assert WellnessDimension.PHYSICAL in dims

    def test_no_evidence_raises(self):
        with pytest.raises(ValueError):
            resolve_dominant("completely unrelated gardening chatter")

    def test_emphasis_marker_wins(self):
        text = (
            "My sleep has fallen apart and the anxiety is constant. "
            "Worst of all my job is gone and the money worries never stop."
        )
        decision = resolve_dominant(text)
        assert decision.rule_applied == 1
        assert decision.dominant is WellnessDimension.VOCATIONAL

    def test_lexical_majority_wins_without_marker(self):
        text = "my job my work my career and the money and also my sleep"
        decision = resolve_dominant(text)
        assert decision.dominant is WellnessDimension.VOCATIONAL
        assert decision.rule_applied == 2

    def test_candidates_sorted(self):
        evidence = detect_dimensions("job money sleep anxiety friends alone")
        scores = [e.score for e in evidence]
        assert scores == sorted(scores, reverse=True)


class TestSimulatedAnnotator:
    def test_perfect_annotator_matches_gold(self, small_dataset):
        annotator = SimulatedAnnotator(
            "perfect", seed=1, clear_accuracy=1.0, ambiguous_accuracy=1.0
        )
        annotations = annotator.annotate_all(list(small_dataset))
        agreement = sum(
            a.label == inst.label
            for a, inst in zip(annotations, small_dataset)
        ) / len(annotations)
        assert agreement == 1.0

    def test_unreliable_annotator_diverges(self, small_dataset):
        annotator = SimulatedAnnotator(
            "sloppy", seed=2, clear_accuracy=0.5, ambiguous_accuracy=0.3
        )
        annotations = annotator.annotate_all(list(small_dataset))
        agreement = sum(
            a.label == inst.label
            for a, inst in zip(annotations, small_dataset)
        ) / len(annotations)
        assert agreement < 0.8

    def test_invalid_accuracy_rejected(self):
        with pytest.raises(ValueError):
            SimulatedAnnotator("x", seed=0, clear_accuracy=1.5)

    def test_wrong_label_is_plausible(self, small_dataset):
        from repro.corpus.lexicon import SECONDARY_BLEED

        annotator = SimulatedAnnotator(
            "confused", seed=3, clear_accuracy=0.0, ambiguous_accuracy=0.0
        )
        for inst in list(small_dataset)[:40]:
            annotation = annotator.annotate(inst)
            if annotation.label != inst.label:
                plausible = set(SECONDARY_BLEED[inst.label]) | {
                    d for d in DIMENSIONS
                }
                assert annotation.label in plausible


class TestAnnotationStudy:
    def test_kappa_near_paper(self, dataset):
        report = run_annotation_study(list(dataset))
        assert abs(report.kappa_percent - 75.92) < 3.0

    def test_report_consistency(self, small_dataset):
        report = run_annotation_study(list(small_dataset))
        assert report.n_items == len(small_dataset)
        assert 0 <= report.raw_agreement <= 1
        assert report.n_disagreements == sum(report.confusion_pairs.values())

    def test_adjudication_resolves_everything(self, small_dataset):
        task = AnnotationTask(
            annotators=(
                SimulatedAnnotator("a", seed=10),
                SimulatedAnnotator("b", seed=20),
            )
        )
        instances = list(small_dataset)
        ann_a, ann_b, _ = task.run(instances)
        final = task.adjudicate(instances, ann_a, ann_b)
        assert len(final) == len(instances)
        # Where annotators agreed, adjudication keeps their label.
        for inst, a, b, f in zip(instances, ann_a, ann_b, final):
            if a.label == b.label:
                assert f == a.label
            else:
                assert f == inst.label

    def test_empty_task_rejected(self):
        task = AnnotationTask(
            annotators=(
                SimulatedAnnotator("a", seed=1),
                SimulatedAnnotator("b", seed=2),
            )
        )
        with pytest.raises(ValueError):
            task.run([])

    def test_confusions_concentrate_on_bleed_pairs(self, dataset):
        report = run_annotation_study(list(dataset))
        top = dict(report.top_confusions(3))
        # The §IV confusions: EA with SA/PA/SpiA dominate.
        assert any("EA" in pair for pair in top)
