"""Shared fixtures.

The full calibrated 1,420-post build takes under a second but is used by
dozens of tests, so it is session-scoped.  ``small_dataset`` is an
uncalibrated 10x-smaller corpus for tests that train models.
"""

from __future__ import annotations

import os

import pytest

from repro.core.dataset import HolistixDataset
from repro.core.labels import WellnessDimension
from repro.corpus.generator import GeneratorConfig


@pytest.fixture(scope="session", autouse=True)
def _isolated_pretrain_cache(tmp_path_factory):
    """Keep the on-disk pretraining cache out of the user's home.

    The disk path is still exercised, just against a per-session
    scratch directory that pytest cleans up.
    """
    os.environ["REPRO_PRETRAIN_CACHE"] = str(
        tmp_path_factory.mktemp("pretrain-cache")
    )
    yield
    os.environ.pop("REPRO_PRETRAIN_CACHE", None)

SMALL_CLASS_COUNTS = {
    WellnessDimension.INTELLECTUAL: 16,
    WellnessDimension.VOCATIONAL: 15,
    WellnessDimension.SPIRITUAL: 19,
    WellnessDimension.PHYSICAL: 30,
    WellnessDimension.SOCIAL: 40,
    WellnessDimension.EMOTIONAL: 22,
}


@pytest.fixture(scope="session")
def dataset() -> HolistixDataset:
    """The full calibrated Holistix build (paper defaults, seed 7)."""
    return HolistixDataset.build()


@pytest.fixture(scope="session")
def small_dataset() -> HolistixDataset:
    """A ~140-post corpus without calibration targets, for model tests."""
    config = GeneratorConfig(
        class_counts=dict(SMALL_CLASS_COUNTS),
        seed=13,
        target_total_words=None,
        target_total_sentences=None,
    )
    return HolistixDataset.build(config)
