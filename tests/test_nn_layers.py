"""Tests for nn layers, attention, transformer blocks, optimisers."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention
from repro.nn.functional import attention_mask_from_padding
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Module, Sequential
from repro.nn.optim import (
    SGD,
    Adam,
    AdamW,
    ConstantSchedule,
    CosineSchedule,
    WarmupLinearSchedule,
    clip_grad_norm,
)
from repro.nn.serialization import load_weights, save_weights
from repro.nn.tensor import Tensor
from repro.nn.transformer import DecoderBlock, EncoderBlock, TransformerEncoder


class TestModule:
    def test_parameters_collected_recursively(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 3, seed=0)
                self.b = Linear(3, 1, seed=1)

        net = Net()
        names = [n for n, _ in net.named_parameters()]
        assert "a.weight" in names and "b.bias" in names
        assert net.n_parameters() == 2 * 3 + 3 + 3 * 1 + 1

    def test_train_eval_propagates(self):
        seq = Sequential(Dropout(0.5, seed=0), Linear(2, 2, seed=0))
        seq.eval()
        assert not seq.steps[0].training
        seq.train()
        assert seq.steps[0].training

    def test_state_dict_roundtrip(self):
        a = Linear(3, 2, seed=0)
        b = Linear(3, 2, seed=99)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_rejected(self):
        a = Linear(3, 2, seed=0)
        with pytest.raises(ValueError, match="mismatch"):
            a.load_state_dict({"weight": np.zeros((3, 2))})

    def test_state_dict_shape_check(self):
        a = Linear(3, 2, seed=0)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError, match="shape"):
            a.load_state_dict(state)


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(4, 3, seed=0)
        out = layer(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert out.shape == (2, 3)

    def test_linear_no_bias(self):
        layer = Linear(4, 3, bias=False, seed=0)
        assert len(list(layer.parameters())) == 1

    def test_embedding_lookup(self):
        emb = Embedding(10, 4, seed=0)
        out = emb(np.array([[1, 2], [3, 3]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out.data[1, 0], out.data[1, 1])

    def test_layernorm_normalises(self):
        ln = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(4, 8)).astype(np.float32))
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_trains_gain_shift(self):
        ln = LayerNorm(4)
        params = list(ln.parameters())
        assert len(params) == 2

    def test_dropout_invalid(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadAttention(16, 4, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)).astype(np.float32))
        assert attn(x).shape == (2, 5, 16)

    def test_dim_head_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_causal_mask_blocks_future(self):
        attn = MultiHeadAttention(8, 2, causal=True, seed=0)
        rng = np.random.default_rng(1)
        base = rng.normal(size=(1, 4, 8)).astype(np.float32)
        changed = base.copy()
        changed[0, 3] += 10.0  # perturb the LAST position only
        out_base = attn(Tensor(base)).data
        out_changed = attn(Tensor(changed)).data
        # Earlier positions cannot see position 3.
        np.testing.assert_allclose(out_base[0, :3], out_changed[0, :3], atol=1e-5)
        assert not np.allclose(out_base[0, 3], out_changed[0, 3])

    def test_bidirectional_sees_everything(self):
        attn = MultiHeadAttention(8, 2, causal=False, seed=0)
        rng = np.random.default_rng(1)
        base = rng.normal(size=(1, 4, 8)).astype(np.float32)
        changed = base.copy()
        changed[0, 3] += 10.0
        out_base = attn(Tensor(base)).data
        out_changed = attn(Tensor(changed)).data
        assert not np.allclose(out_base[0, 0], out_changed[0, 0])

    def test_padding_mask_blocks_pads(self):
        attn = MultiHeadAttention(8, 2, seed=0)
        rng = np.random.default_rng(2)
        base = rng.normal(size=(1, 4, 8)).astype(np.float32)
        ids = np.array([[1, 2, 3, 0]])
        mask = attention_mask_from_padding(ids, pad_id=0)
        changed = base.copy()
        changed[0, 3] += 100.0  # perturb the PAD position
        out_base = attn(Tensor(base), padding_mask=mask).data
        out_changed = attn(Tensor(changed), padding_mask=mask).data
        np.testing.assert_allclose(out_base[0, :3], out_changed[0, :3], atol=1e-4)

    def test_relative_positions_add_parameters(self):
        plain = MultiHeadAttention(8, 2, seed=0)
        relative = MultiHeadAttention(8, 2, relative_positions=True, seed=0)
        assert (
            sum(p.size for p in relative.parameters())
            > sum(p.size for p in plain.parameters())
        )

    def test_cross_attention_shapes(self):
        attn = MultiHeadAttention(8, 2, seed=0)
        rng = np.random.default_rng(3)
        query = Tensor(rng.normal(size=(2, 3, 8)).astype(np.float32))
        memory = Tensor(rng.normal(size=(2, 7, 8)).astype(np.float32))
        assert attn(query, memory, memory).shape == (2, 3, 8)


class TestTransformer:
    def test_encoder_block_shape(self):
        block = EncoderBlock(16, 4, 32, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)).astype(np.float32))
        assert block(x).shape == (2, 5, 16)

    def test_decoder_block_shape(self):
        block = DecoderBlock(16, 4, 32, seed=0)
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(2, 3, 16)).astype(np.float32))
        memory = Tensor(rng.normal(size=(2, 6, 16)).astype(np.float32))
        assert block(x, memory).shape == (2, 3, 16)

    def test_encoder_end_to_end(self):
        enc = TransformerEncoder(
            vocab_size=20, max_len=8, dim=16, n_layers=2, n_heads=2, ffn_hidden=32, seed=0
        )
        out = enc(np.array([[1, 2, 3], [4, 5, 6]]))
        assert out.shape == (2, 3, 16)

    def test_encoder_rejects_bad_shapes(self):
        enc = TransformerEncoder(
            vocab_size=20, max_len=4, dim=8, n_layers=1, n_heads=2, ffn_hidden=16, seed=0
        )
        with pytest.raises(ValueError):
            enc(np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            enc(np.zeros((1, 9), dtype=np.int64))

    def test_no_absolute_positions_variant(self):
        enc = TransformerEncoder(
            vocab_size=20, max_len=8, dim=8, n_layers=1, n_heads=2, ffn_hidden=16,
            use_absolute_positions=False, relative_positions=True, seed=0,
        )
        names = [n for n, _ in enc.named_parameters()]
        assert not any("position_embedding" in n for n in names)
        assert any("rel_bias" in n for n in names)

    def test_gradient_flows_to_embeddings(self):
        enc = TransformerEncoder(
            vocab_size=10, max_len=4, dim=8, n_layers=1, n_heads=2, ffn_hidden=16, seed=0
        )
        out = enc(np.array([[1, 2]]))
        # Note: plain .sum() of a LayerNorm output has zero gradient by
        # construction (rows are zero-mean), so use a quadratic loss.
        (out * out).sum().backward()
        assert enc.token_embedding.weight.grad is not None
        assert np.abs(enc.token_embedding.weight.grad).sum() > 0


class TestOptimisers:
    def _quadratic(self):
        # Minimise ||x - 3||^2; optimum at 3.
        return Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)

    def _step(self, x, optimizer, n=200):
        for _ in range(n):
            loss = ((x - 3.0) ** 2).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return x.data

    def test_sgd_converges(self):
        x = self._quadratic()
        result = self._step(x, SGD([x], 0.1))
        np.testing.assert_allclose(result, 3.0, atol=1e-3)

    def test_sgd_momentum_converges(self):
        x = self._quadratic()
        result = self._step(x, SGD([x], 0.05, momentum=0.9))
        np.testing.assert_allclose(result, 3.0, atol=1e-2)

    def test_adam_converges(self):
        x = self._quadratic()
        result = self._step(x, Adam([x], 0.1))
        np.testing.assert_allclose(result, 3.0, atol=1e-2)

    def test_adamw_decays_weights(self):
        x = Tensor(np.full(3, 10.0, dtype=np.float32), requires_grad=True)
        opt = AdamW([x], 0.01, weight_decay=0.5)
        loss = (x * 0.0).sum()  # zero gradient: only decay acts
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert np.all(x.data < 10.0)

    def test_no_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], 0.1)

    def test_invalid_lr(self):
        x = self._quadratic()
        with pytest.raises(ValueError):
            Adam([x], 0.0)

    def test_clip_grad_norm(self):
        x = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        x.grad = np.array([3.0, 4.0, 0.0], dtype=np.float32)
        norm = clip_grad_norm([x], 1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(x.grad) == pytest.approx(1.0, rel=1e-5)


class TestSchedules:
    def _optimizer(self):
        x = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        return Adam([x], 1.0)

    def test_constant(self):
        schedule = ConstantSchedule(self._optimizer())
        assert schedule.step() == 1.0
        assert schedule.step() == 1.0

    def test_warmup_then_decay(self):
        schedule = WarmupLinearSchedule(
            self._optimizer(), warmup_steps=10, total_steps=100
        )
        warmup_rates = [schedule.step() for _ in range(10)]
        assert warmup_rates == sorted(warmup_rates)
        later = [schedule.step() for _ in range(80)]
        assert later == sorted(later, reverse=True)

    def test_cosine_reaches_min(self):
        schedule = CosineSchedule(
            self._optimizer(), warmup_steps=2, total_steps=50, min_lr=0.1
        )
        rates = [schedule.step() for _ in range(50)]
        assert rates[-1] == pytest.approx(0.1, abs=1e-6)

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            WarmupLinearSchedule(self._optimizer(), warmup_steps=10, total_steps=5)


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        enc = TransformerEncoder(
            vocab_size=12, max_len=4, dim=8, n_layers=1, n_heads=2, ffn_hidden=16, seed=0
        )
        path = tmp_path / "weights.npz"
        save_weights(enc, path)
        clone = TransformerEncoder(
            vocab_size=12, max_len=4, dim=8, n_layers=1, n_heads=2, ffn_hidden=16, seed=5
        )
        load_weights(clone, path)
        ids = np.array([[1, 2, 3]])
        np.testing.assert_allclose(enc(ids).data, clone(ids).data, atol=1e-6)
