"""Tests for HolistixDataset: statistics, splits, folds, persistence."""

from collections import Counter

import pytest

from repro.core.dataset import HolistixDataset
from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.corpus.generator import PAPER_CLASS_COUNTS


class TestCollection:
    def test_len_and_iteration(self, small_dataset):
        assert len(small_dataset) == sum(
            Counter(i.label for i in small_dataset).values()
        )

    def test_indexing(self, small_dataset):
        assert small_dataset[0] is small_dataset.instances[0]

    def test_texts_labels_spans_aligned(self, small_dataset):
        assert len(small_dataset.texts) == len(small_dataset.labels) == len(
            small_dataset.spans
        )
        for inst, text, span in zip(
            small_dataset, small_dataset.texts, small_dataset.spans
        ):
            assert inst.text == text
            assert inst.span_text == span

    def test_subset(self, small_dataset):
        sub = small_dataset.subset([0, 2, 4])
        assert len(sub) == 3
        assert sub[1].text == small_dataset[2].text

    def test_filter_label(self, small_dataset):
        social = small_dataset.filter_label(WellnessDimension.SOCIAL)
        assert all(i.label is WellnessDimension.SOCIAL for i in social)
        assert len(social) > 0


class TestStatistics:
    def test_table2_exact(self, dataset):
        stats = dataset.statistics()
        assert stats.total_posts == 1420
        assert stats.total_words == 37082
        assert stats.total_sentences == 2271
        assert stats.max_words_per_post == 115
        assert stats.max_sentences_per_post == 9
        assert stats.dimension_counts == PAPER_CLASS_COUNTS

    def test_percentages_sum_to_100(self, dataset):
        percentages = dataset.statistics().dimension_percentages()
        assert sum(percentages.values()) == pytest.approx(100.0)

    def test_empty_dataset_statistics(self):
        stats = HolistixDataset([]).statistics()
        assert stats.total_posts == 0
        assert stats.max_words_per_post == 0

    def test_frequent_words_table3_overlap(self, dataset):
        from repro.corpus.lexicon import TABLE3_EXPECTED_WORDS

        profiles = dataset.frequent_span_words(top_k=8)
        for dim in DIMENSIONS:
            expected = set(TABLE3_EXPECTED_WORDS[dim])
            measured = {w for w, _ in profiles[dim]}
            assert len(expected & measured) >= len(expected) - 3, dim

    def test_frequent_words_sorted_by_count(self, dataset):
        profiles = dataset.frequent_span_words(top_k=10)
        for words in profiles.values():
            counts = [c for _, c in words]
            assert counts == sorted(counts, reverse=True)


class TestSplits:
    def test_fixed_split_paper_sizes(self, dataset):
        split = dataset.fixed_split()
        assert len(split.train) == 990
        assert len(split.validation) == 212
        assert len(split.test) == 213

    def test_fixed_split_disjoint(self, dataset):
        split = dataset.fixed_split()
        train_ids = {i.post.post_id for i in split.train}
        val_ids = {i.post.post_id for i in split.validation}
        test_ids = {i.post.post_id for i in split.test}
        assert not (train_ids & val_ids)
        assert not (train_ids & test_ids)
        assert not (val_ids & test_ids)

    def test_fixed_split_all_classes_everywhere(self, dataset):
        split = dataset.fixed_split()
        for part in (split.train, split.validation, split.test):
            assert set(part.labels) == set(DIMENSIONS)

    def test_fixed_split_oversized_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.fixed_split(train=990, validation=212, test=213)

    def test_stratified_folds_partition(self, dataset):
        folds = dataset.stratified_folds(10)
        assert len(folds) == 10
        all_eval = sorted(i for _, eval_idx in folds for i in eval_idx)
        assert all_eval == list(range(len(dataset)))

    def test_stratified_folds_preserve_ratios(self, dataset):
        folds = dataset.stratified_folds(10)
        for _, eval_idx in folds:
            counts = Counter(dataset[i].label for i in eval_idx)
            for dim in DIMENSIONS:
                expected = PAPER_CLASS_COUNTS[dim] / 10
                assert abs(counts[dim] - expected) <= 1

    def test_folds_deterministic(self, dataset):
        a = dataset.stratified_folds(5, seed=3)
        b = dataset.stratified_folds(5, seed=3)
        assert a == b

    def test_too_few_folds_rejected(self, dataset):
        with pytest.raises(ValueError):
            dataset.stratified_folds(1)


class TestPersistence:
    def test_jsonl_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "holistix.jsonl"
        small_dataset.save(path)
        loaded = HolistixDataset.load(path)
        assert len(loaded) == len(small_dataset)
        for a, b in zip(small_dataset, loaded):
            assert a.text == b.text
            assert a.label == b.label
            assert a.span_text == b.span_text
            assert a.metadata == b.metadata

    def test_loaded_statistics_match(self, small_dataset, tmp_path):
        path = tmp_path / "holistix.jsonl"
        small_dataset.save(path)
        loaded = HolistixDataset.load(path)
        assert loaded.statistics() == small_dataset.statistics()


class TestBuildDeterminism:
    def test_same_seed_same_corpus(self):
        from repro.corpus.generator import GeneratorConfig

        config = GeneratorConfig(
            class_counts={WellnessDimension.SOCIAL: 20, WellnessDimension.PHYSICAL: 15},
            target_total_words=None,
            target_total_sentences=None,
            seed=99,
        )
        a = HolistixDataset.build(config)
        b = HolistixDataset.build(config)
        assert a.texts == b.texts
        assert a.labels == b.labels

    def test_different_seed_different_corpus(self):
        from repro.corpus.generator import GeneratorConfig

        base = dict(
            class_counts={WellnessDimension.SOCIAL: 20},
            target_total_words=None,
            target_total_sentences=None,
        )
        a = HolistixDataset.build(GeneratorConfig(seed=1, **base))
        b = HolistixDataset.build(GeneratorConfig(seed=2, **base))
        assert a.texts != b.texts
