"""Tests for the multi-process serving backend.

The tentpole claims of :class:`ProcessInferenceServer`, each pinned
here:

* **Byte-identical predictions.**  Probabilities served through
  worker processes + shared-memory weights equal the threaded server's
  and the bare engine's *exactly* — under pinned batch composition
  (``max_batch_size=1``): LR probabilities differ at ~1e-15 between
  batch splits (BLAS GEMM accumulation is shape-dependent), so only
  singleton batches make "byte-identical" a well-defined claim.  This
  isolates what we actually assert: shared memory + pipe transport add
  zero numerical drift.
* **Shared-memory hygiene.**  The segment exists while serving, is
  unlinked on clean ``stop()`` and on SIGTERM (subprocess test), and a
  worker process dying mid-service leaks nothing.
* **Worker supervision.**  Dead workers respawn (lazily on dispatch,
  eagerly via ``ensure_workers``), restarts are counted, remote errors
  surface as :class:`RemoteWorkerError` without killing the slot.
* **The shared admission core.**  Shed/block overload and drain
  semantics are inherited from ``BatchingServerBase`` unchanged.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.pipeline import WellnessClassifier
from repro.engine.engine import PredictionEngine
from repro.engine.procserver import (
    ProcessInferenceServer,
    RemoteWorkerError,
)
from repro.engine.registry import build_engine
from repro.engine.server import InferenceServer, ServerOverloaded
from repro.nn.serialization import SharedCheckpoint, load_checkpoint
from repro.serving.gateway import ServingGateway


# ----------------------------------------------------------------------
# Module-level engine factories (picklable across fork AND spawn)
# ----------------------------------------------------------------------
class _HashBackend:
    """Deterministic pure function of the text — the cross-process oracle."""

    n_classes = 6

    def proba_batch(self, texts):
        import hashlib

        rows = np.empty((len(texts), 6), dtype=np.float64)
        for i, text in enumerate(texts):
            digest = hashlib.sha256(text.encode("utf-8")).digest()
            vals = np.frombuffer(digest[:6], dtype=np.uint8).astype(np.float64)
            rows[i] = (vals + 1.0) / (vals + 1.0).sum()
        return rows


class _BoomBackend(_HashBackend):
    """Raises on texts containing ``BOOM`` — the remote-error path."""

    def proba_batch(self, texts):
        if any("BOOM" in t for t in texts):
            raise ValueError("boom requested")
        return super().proba_batch(texts)


class _SlowBackend(_HashBackend):
    def proba_batch(self, texts):
        time.sleep(0.05)
        return super().proba_batch(texts)


def make_hash_engine():
    return PredictionEngine(_HashBackend(), model_id="hash", cache_size=0)


def make_boom_engine():
    return PredictionEngine(_BoomBackend(), model_id="boom", cache_size=0)


def make_slow_engine():
    return PredictionEngine(_SlowBackend(), model_id="slow", cache_size=0)


def make_broken_engine():
    raise RuntimeError("this factory always fails")


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def lr_checkpoint(tmp_path_factory, small_dataset) -> Path:
    """A real fitted LR checkpoint directory, built once per module."""
    classifier = WellnessClassifier("LR").fit(small_dataset.instances)
    path = tmp_path_factory.mktemp("ckpt") / "lr"
    classifier.save(path)
    return path


def segment_gone(name: str) -> bool:
    """True when the named shm segment no longer exists."""
    from repro.nn.serialization import SharedManifest

    probe = SharedManifest(shm_name=name, total_bytes=0, specs=())
    try:
        SharedCheckpoint.attach(probe).close()
    except FileNotFoundError:
        return True
    return False


# ----------------------------------------------------------------------
# Byte-identical predictions
# ----------------------------------------------------------------------
class TestByteIdenticalOracle:
    def test_checkpoint_served_probs_equal_threaded_and_inprocess(
        self, lr_checkpoint, small_dataset
    ):
        texts = small_dataset.texts[:20]
        arrays, config = load_checkpoint(lr_checkpoint)

        classifier = WellnessClassifier.load(lr_checkpoint)
        engine = build_engine(
            classifier.baseline,
            model=classifier.model,
            vectorizer=classifier.vectorizer,
            model_id="oracle",
            cache_size=0,
        )
        # Singleton batches everywhere: probabilities are only
        # bit-reproducible under identical batch composition.
        oracle = np.stack([engine.predict_proba([t])[0] for t in texts])

        threaded = InferenceServer(engine, workers=1, max_batch_size=1)
        with threaded:
            thread_probs = np.stack(
                [threaded.submit(t).result(timeout=30).probabilities for t in texts]
            )

        mp_server = ProcessInferenceServer(
            arrays=arrays,
            config=config,
            workers=2,
            max_batch_size=1,
            cache_size=0,
        )
        with mp_server:
            mp_server.wait_ready(timeout=120)
            mp_probs = np.stack(
                [
                    mp_server.submit(t).result(timeout=30).probabilities
                    for t in texts
                ]
            )

        np.testing.assert_array_equal(thread_probs, oracle)
        np.testing.assert_array_equal(mp_probs, oracle)

    def test_factory_workers_match_local_engine(self):
        texts = [f"text number {i}" for i in range(30)]
        oracle = make_hash_engine().predict_proba(texts)
        server = ProcessInferenceServer.from_factory(
            make_hash_engine, workers=2, max_batch_size=1
        )
        with server:
            server.wait_ready(timeout=120)
            probs = np.stack(
                [server.submit(t).result(timeout=30).probabilities for t in texts]
            )
        np.testing.assert_array_equal(probs, oracle)


# ----------------------------------------------------------------------
# Shared-memory lifecycle
# ----------------------------------------------------------------------
class TestSharedMemoryLifecycle:
    def test_segment_exists_while_running_and_unlinked_on_stop(
        self, lr_checkpoint
    ):
        server = ProcessInferenceServer.from_checkpoint(
            lr_checkpoint, workers=1, max_batch_size=4
        )
        assert server.shared_segment_name is None
        with server:
            server.wait_ready(timeout=120)
            name = server.shared_segment_name
            assert name is not None and not segment_gone(name)
            server.submit("a post about sleep").result(timeout=30)
        assert server.shared_segment_name is None
        assert segment_gone(name)

    def test_segment_unlinked_when_worker_died_mid_service(self, lr_checkpoint):
        server = ProcessInferenceServer.from_checkpoint(
            lr_checkpoint, workers=1, max_batch_size=4
        )
        with server:
            server.wait_ready(timeout=120)
            name = server.shared_segment_name
            pid = server.worker_processes()[0]["pid"]
            os.kill(pid, signal.SIGKILL)
            # The respawned worker serves through the same segment.
            result = server.submit("an anxious evening").result(timeout=60)
            assert len(result.probabilities) == 6
        assert segment_gone(name)

    def test_sigterm_unlinks_segment_and_exits_zero(
        self, lr_checkpoint, tmp_path
    ):
        """A SIGTERM'd serving process must drain and clean its segment."""
        script = tmp_path / "serve_until_sigterm.py"
        script.write_text(
            textwrap.dedent(
                """
                import signal, sys, threading
                from repro.engine.procserver import ProcessInferenceServer

                stop = threading.Event()
                signal.signal(signal.SIGTERM, lambda *a: stop.set())
                server = ProcessInferenceServer.from_checkpoint(
                    sys.argv[1], workers=1, max_batch_size=4
                )
                server.start()
                server.wait_ready(timeout=120)
                server.submit("warm request").result(timeout=30)
                print(server.shared_segment_name, flush=True)
                stop.wait()
                server.stop()
                """
            ),
            encoding="utf-8",
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src"
        ) + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.Popen(
            [sys.executable, str(script), str(lr_checkpoint)],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            name = proc.stdout.readline().strip()
            assert name.startswith("hx_")
            assert not segment_gone(name)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=120) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
        assert segment_gone(name)


# ----------------------------------------------------------------------
# Worker supervision
# ----------------------------------------------------------------------
class TestWorkerSupervision:
    def test_wait_ready_across_start_methods(self):
        for method in ("fork", "spawn"):
            if method not in multiprocessing.get_all_start_methods():
                continue
            server = ProcessInferenceServer.from_factory(
                make_hash_engine,
                workers=2,
                max_batch_size=2,
                start_method=method,
            )
            with server:
                server.wait_ready(timeout=120)
                report = server.worker_processes()
                assert [p["alive"] for p in report] == [True, True]
                assert all(isinstance(p["pid"], int) for p in report)
                result = server.submit(f"via {method}").result(timeout=30)
                assert len(result.probabilities) == 6

    def test_dead_worker_respawns_on_dispatch_and_counts_restart(self):
        server = ProcessInferenceServer.from_factory(
            make_hash_engine, workers=1, max_batch_size=2
        )
        with server:
            server.wait_ready(timeout=120)
            first_pid = server.worker_processes()[0]["pid"]
            os.kill(first_pid, signal.SIGKILL)
            oracle = make_hash_engine().predict_proba(["after the crash"])[0]
            result = server.submit("after the crash").result(timeout=60)
            np.testing.assert_array_equal(result.probabilities, oracle)
            report = server.worker_processes()[0]
            assert report["restarts"] >= 1
            assert report["alive"] and report["pid"] != first_pid

    def test_ensure_workers_revives_idle_dead_worker(self):
        server = ProcessInferenceServer.from_factory(
            make_hash_engine, workers=2, max_batch_size=2
        )
        with server:
            server.wait_ready(timeout=120)
            victim = server.worker_processes()[0]["pid"]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if not server.worker_processes()[0]["alive"]:
                    break
                time.sleep(0.02)
            assert server.ensure_workers() == 1
            assert all(p["alive"] for p in server.worker_processes())
            assert server.ensure_workers() == 0  # nothing left to revive

    def test_remote_inference_error_surfaces_without_killing_worker(self):
        server = ProcessInferenceServer.from_factory(
            make_boom_engine, workers=1, max_batch_size=1
        )
        with server:
            server.wait_ready(timeout=120)
            with pytest.raises(RemoteWorkerError, match="boom requested"):
                server.submit("BOOM please").result(timeout=30)
            # The worker survived the exception and keeps serving.
            result = server.submit("a calm follow-up").result(timeout=30)
            assert len(result.probabilities) == 6
            assert server.worker_processes()[0]["restarts"] == 0

    def test_factory_failure_reported_by_wait_ready(self):
        server = ProcessInferenceServer.from_factory(
            make_broken_engine, workers=1, spawn_timeout_s=30
        )
        with server, pytest.raises(
            RemoteWorkerError, match="this factory always fails"
        ):
            server.wait_ready(timeout=120)


# ----------------------------------------------------------------------
# Inherited admission semantics
# ----------------------------------------------------------------------
class TestAdmissionSemantics:
    def test_shed_mode_raises_when_queue_full(self):
        server = ProcessInferenceServer.from_factory(
            make_slow_engine,
            workers=1,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=2,
            overload="shed",
        )
        with server:
            server.wait_ready(timeout=120)
            futures = []
            with pytest.raises(ServerOverloaded):
                for i in range(200):
                    futures.append(server.submit(f"burst {i}"))
            for f in futures:
                f.result(timeout=60)
            assert server.stats.snapshot().shed >= 1

    def test_drain_resolves_every_admitted_future(self):
        server = ProcessInferenceServer.from_factory(
            make_slow_engine, workers=2, max_batch_size=4, max_queue=64
        )
        server.start()
        server.wait_ready(timeout=120)
        futures = [server.submit(f"draining {i}") for i in range(24)]
        server.stop()
        for f in futures:
            assert len(f.result(timeout=60).probabilities) == 6


# ----------------------------------------------------------------------
# Hot reload
# ----------------------------------------------------------------------
class TestHotReload:
    def test_reload_weights_changes_predictions_and_bumps_version(
        self, lr_checkpoint
    ):
        arrays, config = load_checkpoint(lr_checkpoint)
        server = ProcessInferenceServer(
            arrays=arrays,
            config=config,
            workers=1,
            max_batch_size=1,
            cache_size=64,
        )
        text = "a long walk cleared my head"
        with server:
            server.wait_ready(timeout=120)
            assert server.weights_version == 1
            before = server.submit(text).result(timeout=30).probabilities

            reloaded = {
                k: (np.zeros_like(v) if k == "model.coef_" else v)
                for k, v in arrays.items()
            }
            assert server.reload_weights(reloaded) == 2
            assert server.weights_version == 2
            after = server.submit(text).result(timeout=30).probabilities
            # Zeroed coefficients collapse the logits to the intercepts:
            # the worker provably rebuilt (and un-cached) its engine.
            assert not np.array_equal(before, after)

    def test_reload_rejected_in_factory_mode(self):
        server = ProcessInferenceServer.from_factory(make_hash_engine, workers=1)
        with server:
            server.wait_ready(timeout=120)
            with pytest.raises(RuntimeError, match="factory mode"):
                server.reload_weights({"coef_": np.zeros(3)})


# ----------------------------------------------------------------------
# Gateway integration
# ----------------------------------------------------------------------
class TestGatewayProcessAwareness:
    def test_healthz_reports_processes_and_metrics_grow_families(self):
        server = ProcessInferenceServer.from_factory(
            make_hash_engine, workers=2, max_batch_size=2
        )
        with ServingGateway(server) as gateway:
            server.wait_ready(timeout=120)
            from repro.serving.client import ServingClient

            client = ServingClient(gateway.url, deadline_s=30)
            health = client.healthz()
            assert health["status"] == "ok"
            assert [p["worker"] for p in health["processes"]] == [0, 1]
            assert all(p["alive"] for p in health["processes"])

            client.predict("one request through http")
            text = client.metrics_text()
            assert "holistix_worker_process_alive" in text
            assert "holistix_worker_process_restarts_total" in text
            parsed = client.metrics()
            alive = [
                value
                for (name, labels), value in parsed.items()
                if name == "holistix_worker_process_alive"
            ]
            assert alive == [1.0, 1.0]

    def test_healthz_revives_dead_worker(self):
        server = ProcessInferenceServer.from_factory(
            make_hash_engine, workers=2, max_batch_size=2
        )
        with ServingGateway(server) as gateway:
            server.wait_ready(timeout=120)
            from repro.serving.client import ServingClient

            client = ServingClient(gateway.url, deadline_s=30)
            victim = server.worker_processes()[1]["pid"]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if not server.worker_processes()[1]["alive"]:
                    break
                time.sleep(0.02)
            health = client.healthz()  # the probe itself heals the slot
            assert health["status"] == "ok"
            assert all(p["alive"] for p in health["processes"])
            assert health["processes"][1]["restarts"] >= 1

    def test_threaded_server_healthz_has_no_processes_key(self):
        engine = make_hash_engine()
        with ServingGateway(InferenceServer(engine, workers=1)) as gateway:
            from repro.serving.client import ServingClient

            health = ServingClient(gateway.url, deadline_s=30).healthz()
            assert "processes" not in health


class TestFaultInjectionUnderLoad:
    """SIGKILL a worker process mid-run under open-loop load.

    The supervision claims, now exercised while the server is actually
    loaded: only batches in flight on the killed worker may fail (typed
    as :class:`RemoteWorkerError` — the dispatch path retries once after
    respawn, so even those usually succeed), the slot respawns and is
    counted, the open-loop accounting never loses a request, and tail
    latency returns to its pre-fault neighbourhood once the worker is
    back.
    """

    def test_sigkill_mid_load_recovers_and_tail_returns_to_baseline(self):
        from repro.loadgen import fixed_rate_schedule, run_open_loop

        server = ProcessInferenceServer.from_factory(
            make_hash_engine,
            workers=2,
            max_batch_size=4,
            max_wait_ms=0.5,
            max_queue=256,
            overload="block",
        )
        texts = [f"fault doc {i}" for i in range(64)]

        def send(text: str, intended_at: float) -> None:
            server.submit(text).result(timeout=60)

        def run_leg(seed: int, duration_s: float = 1.0):
            return run_open_loop(
                fixed_rate_schedule(120.0, duration_s=duration_s, seed=seed),
                send,
                texts,
                max_in_flight=64,
                deadline_s=30.0,
            )

        with server:
            server.wait_ready(timeout=120)
            baseline = run_leg(1)
            assert baseline.failed == 0 and baseline.dropped == 0

            victim = server.worker_processes()[0]["pid"]
            killer = threading.Timer(0.4, os.kill, (victim, signal.SIGKILL))
            killer.start()
            try:
                faulted = run_leg(2, duration_s=1.5)
            finally:
                killer.cancel()

            # Accounting never loses a request, even across the crash.
            assert faulted.dropped == 0
            assert faulted.completed + faulted.failed == faulted.scheduled
            # Failures, if any, are exactly the typed remote-death error.
            assert set(faulted.error_types) <= {"RemoteWorkerError"}

            report = server.worker_processes()
            assert sum(p["restarts"] for p in report) >= 1
            assert all(p["alive"] for p in report)

            recovered = run_leg(3)
            assert recovered.failed == 0 and recovered.dropped == 0
            # Post-recovery tail is back near baseline (generous bound:
            # shared-runner scheduling noise, not respawn debt).
            assert recovered.p99_ms <= max(10 * baseline.p99_ms, 250.0)


# ----------------------------------------------------------------------
# Background supervisor + crash-loop breaker
# ----------------------------------------------------------------------
class TestBackgroundSupervisor:
    """Dead workers come back without anyone probing or sending traffic.

    The background supervisor thread is what makes recovery *bounded in
    time* rather than "whenever the next request or health probe
    arrives" — so these tests only ever read the ``worker_processes()``
    report while waiting.
    """

    def test_dead_worker_respawns_with_zero_probes_and_zero_traffic(self):
        server = ProcessInferenceServer.from_factory(
            make_hash_engine,
            workers=1,
            max_batch_size=2,
            supervisor_interval_s=0.05,
            respawn_backoff_base_s=0.01,
        )
        with server:
            server.wait_ready(timeout=120)
            victim = server.worker_processes()[0]["pid"]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30
            report = server.worker_processes()[0]
            while time.monotonic() < deadline:
                report = server.worker_processes()[0]
                if report["alive"] and report["pid"] != victim:
                    break
                time.sleep(0.02)
            assert report["alive"] and report["pid"] != victim
            assert report["restarts"] >= 1
            assert not report["crash_looping"]
            result = server.submit("served by the respawn").result(timeout=60)
            assert len(result.probabilities) == 6

    def test_crash_loop_retires_slot_and_degrades_healthz(self):
        server = ProcessInferenceServer.from_factory(
            make_hash_engine,
            workers=2,
            max_batch_size=2,
            supervisor_interval_s=0.05,
            respawn_backoff_base_s=0.01,
            crash_loop_threshold=2,
            crash_loop_window_s=60.0,
        )
        with ServingGateway(server) as gateway:
            server.wait_ready(timeout=120)
            # Kill slot 0 every time it comes back until the breaker
            # trips (threshold=2 deaths inside the window).
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                report = server.worker_processes()[0]
                if report["crash_looping"]:
                    break
                if report["alive"]:
                    os.kill(report["pid"], signal.SIGKILL)
                time.sleep(0.02)
            report = server.worker_processes()[0]
            assert report["crash_looping"] and not report["alive"]

            # The retired slot stays retired: neither the supervisor,
            # ensure_workers, nor a healthz probe revives it.
            assert server.ensure_workers() == 0
            from repro.serving.client import ServingClient

            client = ServingClient(gateway.url, deadline_s=30)
            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["processes"][0]["crash_looping"] is True
            assert health["processes"][1]["alive"] is True

            # The surviving worker still serves traffic.
            result = server.submit("one worker is enough").result(timeout=60)
            assert len(result.probabilities) == 6

    def test_respawn_backoff_spaces_out_attempts(self):
        server = ProcessInferenceServer.from_factory(
            make_hash_engine,
            workers=1,
            max_batch_size=2,
            supervisor_interval_s=0.02,
            respawn_backoff_base_s=0.4,
            respawn_backoff_max_s=0.4,
            crash_loop_threshold=10,
        )
        with server:
            server.wait_ready(timeout=120)
            os.kill(server.worker_processes()[0]["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                report = server.worker_processes()[0]
                if (
                    report["restarts"] >= 1
                    and report["alive"]
                    and report["pid"] is not None
                ):
                    break
                time.sleep(0.01)
            assert report["alive"] and report["pid"] is not None
            # Immediately kill the replacement: the next respawn must
            # wait out the per-slot backoff, not happen on the very next
            # supervisor sweep.
            os.kill(report["pid"], signal.SIGKILL)
            killed_at = time.monotonic()
            while time.monotonic() < killed_at + 30:
                report = server.worker_processes()[0]
                if report["restarts"] >= 2:
                    break
                time.sleep(0.01)
            assert report["restarts"] >= 2
            assert time.monotonic() - killed_at >= 0.3


# ----------------------------------------------------------------------
# Chaos arming against real worker processes
# ----------------------------------------------------------------------
class TestChaosArming:
    def test_armed_plan_kills_worker_and_supervisor_recovers(self):
        from repro.chaos import FaultEvent, FaultInjector, FaultPlan

        server = ProcessInferenceServer.from_factory(
            make_hash_engine,
            workers=1,
            max_batch_size=2,
            supervisor_interval_s=0.05,
            respawn_backoff_base_s=0.01,
        )
        with server:
            server.wait_ready(timeout=120)
            victim = server.worker_processes()[0]["pid"]
            plan = FaultPlan(
                seed=0,
                events=(FaultEvent(at_s=0.05, kind="worker_crash", target=0),),
            )
            server.arm_chaos(FaultInjector(plan))
            assert server.chaos is not None and server.chaos.armed
            deadline = time.monotonic() + 60
            report = server.worker_processes()[0]
            while time.monotonic() < deadline:
                report = server.worker_processes()[0]
                if report["restarts"] >= 1 and report["alive"]:
                    break
                time.sleep(0.02)
            assert report["restarts"] >= 1
            assert report["alive"] and report["pid"] != victim
            assert server.chaos.applied_counts() == {"worker_crash": 1}
            result = server.submit("recovered from chaos").result(timeout=60)
            assert len(result.probabilities) == 6
        # stop() disarmed the injector and dropped the reference, so no
        # stray dispatch thread can SIGKILL a recycled pid later.
        assert server.chaos is None


# ----------------------------------------------------------------------
# Admin reload endpoint (gateway + procserver end to end)
# ----------------------------------------------------------------------
class TestAdminReload:
    def _boot(self, lr_checkpoint, **gateway_kwargs):
        arrays, config = load_checkpoint(lr_checkpoint)
        server = ProcessInferenceServer(
            arrays=arrays,
            config=config,
            workers=1,
            max_batch_size=1,
            cache_size=64,
        )
        return server, ServingGateway(server, admin_token="hunter2", **gateway_kwargs)

    @staticmethod
    def _admin_post(url, path, body, token):
        import json as _json
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            url + path,
            data=_json.dumps(body).encode(),
            headers={"Content-Type": "application/json", "X-Admin-Token": token},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30.0) as response:
                return response.status, _json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, _json.loads(error.read())

    def test_reload_over_http_bumps_version_and_serves(self, lr_checkpoint):
        server, gateway = self._boot(lr_checkpoint)
        with gateway:
            server.wait_ready(timeout=120)
            status, payload = self._admin_post(
                gateway.url,
                "/v1/admin/reload",
                {"checkpoint": str(lr_checkpoint)},
                "hunter2",
            )
            assert status == 200, payload
            assert payload["status"] == "ok"
            assert payload["weights_version"] == 2
            result = server.submit("still serving after reload").result(timeout=60)
            assert len(result.probabilities) == 6

    def test_poisoned_weights_roll_back(self, lr_checkpoint, tmp_path):
        from repro.nn.serialization import save_checkpoint

        arrays, config = load_checkpoint(lr_checkpoint)
        # NaN the *intercepts*: a NaN coefficient row can be skipped
        # entirely by the sparse matmul when the probe text is
        # out-of-vocabulary, but the intercept lands in every logit.
        poisoned = {
            k: (np.full_like(v, np.nan) if k == "model.intercept_" else v)
            for k, v in arrays.items()
        }
        bad_path = save_checkpoint(
            tmp_path / "poisoned", arrays=poisoned, config=config
        )
        server, gateway = self._boot(lr_checkpoint)
        text = "a long walk cleared my head"
        with gateway:
            server.wait_ready(timeout=120)
            before = server.submit(text).result(timeout=60).probabilities
            status, payload = self._admin_post(
                gateway.url,
                "/v1/admin/reload",
                {"checkpoint": str(bad_path)},
                "hunter2",
            )
            # NaN intercepts fail the self-check prediction: the old
            # weights must already be back when the response lands.
            assert status == 500, payload
            assert payload["error"]["code"] == "self_check_failed"
            assert payload["rolled_back"] is True
            after = server.submit(text).result(timeout=60).probabilities
            np.testing.assert_array_equal(before, after)

    def test_missing_checkpoint_is_400(self, lr_checkpoint):
        server, gateway = self._boot(lr_checkpoint)
        with gateway:
            server.wait_ready(timeout=120)
            status, payload = self._admin_post(
                gateway.url,
                "/v1/admin/reload",
                {"checkpoint": "/nonexistent/nowhere"},
                "hunter2",
            )
            assert status == 400
            assert payload["error"]["code"] == "bad_request"
