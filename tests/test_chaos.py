"""Unit tests for the deterministic chaos layer (plan + injector)."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.chaos import FaultEvent, FaultInjector, FaultPlan


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(at_s=0.1, kind="meteor_strike")

    def test_oneshot_kind_rejects_duration(self):
        with pytest.raises(ValueError, match="one-shot"):
            FaultEvent(at_s=0.1, kind="worker_crash", duration_s=1.0)

    def test_window_kind_requires_duration(self):
        with pytest.raises(ValueError, match="positive duration_s"):
            FaultEvent(at_s=0.1, kind="worker_stall")

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(at_s=-0.1, kind="worker_crash")
        with pytest.raises(ValueError):
            FaultEvent(at_s=0.1, kind="slow_batch", duration_s=1.0, delay_ms=-1.0)

    def test_window_membership_and_targeting(self):
        event = FaultEvent(at_s=1.0, kind="worker_stall", target=1, duration_s=0.5)
        assert not event.active_at(0.99)
        assert event.active_at(1.0)
        assert event.active_at(1.49)
        assert not event.active_at(1.5)
        assert event.matches_worker(1) and not event.matches_worker(0)
        untargeted = FaultEvent(at_s=0.0, kind="worker_stall", duration_s=0.1)
        assert untargeted.matches_worker(0) and untargeted.matches_worker(7)


class TestFaultPlan:
    def test_round_trips_through_json(self, tmp_path):
        plan = FaultPlan.generate(seed=7, duration_s=5.0, workers=3)
        path = plan.save(tmp_path / "plan.json")
        loaded = FaultPlan.load(path)
        assert loaded == plan
        assert loaded.timeline() == plan.timeline()
        # The file is plain versioned JSON, editable by hand.
        payload = json.loads(path.read_text())
        assert payload["plan_version"] == 1
        assert payload["seed"] == 7

    def test_same_seed_reproduces_identical_timeline(self):
        a = FaultPlan.generate(seed=123, duration_s=4.0, workers=2)
        b = FaultPlan.generate(seed=123, duration_s=4.0, workers=2)
        assert a.timeline() == b.timeline()
        assert a == b

    def test_different_seed_differs(self):
        a = FaultPlan.generate(seed=1, duration_s=4.0, workers=2)
        b = FaultPlan.generate(seed=2, duration_s=4.0, workers=2)
        assert a.timeline() != b.timeline()

    def test_rejects_unsorted_events(self):
        events = (
            FaultEvent(at_s=2.0, kind="worker_crash"),
            FaultEvent(at_s=1.0, kind="worker_crash"),
        )
        with pytest.raises(ValueError, match="sorted"):
            FaultPlan(seed=0, events=events)

    def test_rejects_empty_plan_and_bad_version(self):
        with pytest.raises(ValueError, match="at least one event"):
            FaultPlan(seed=0, events=())
        with pytest.raises(ValueError, match="plan_version"):
            FaultPlan.from_dict({"plan_version": 99, "seed": 0, "events": []})

    def test_duration_covers_last_window(self):
        plan = FaultPlan(
            seed=0,
            events=(
                FaultEvent(at_s=0.5, kind="worker_crash"),
                FaultEvent(at_s=1.0, kind="worker_stall", duration_s=0.75),
            ),
        )
        assert plan.duration_s == pytest.approx(1.75)
        assert plan.kinds() == ("worker_crash", "worker_stall")


class TestFaultInjector:
    def test_oneshot_dispatches_to_registered_handler(self):
        plan = FaultPlan(
            seed=0,
            events=(
                FaultEvent(at_s=0.02, kind="worker_crash", target=1),
                FaultEvent(at_s=0.05, kind="worker_crash", target=0),
            ),
        )
        injector = FaultInjector(plan)
        fired: list[int | None] = []
        injector.register("worker_crash", lambda event: fired.append(event.target))
        injector.arm()
        deadline = time.monotonic() + 2.0
        while len(fired) < 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        injector.disarm()
        assert fired == [1, 0]
        assert injector.applied_counts() == {"worker_crash": 2}
        log = injector.fired_log()
        assert [entry[1] for entry in log] == ["worker_crash", "worker_crash"]

    def test_unregistered_oneshot_is_skipped_not_fatal(self):
        plan = FaultPlan(
            seed=0, events=(FaultEvent(at_s=0.01, kind="worker_crash"),)
        )
        injector = FaultInjector(plan)
        injector.arm()
        time.sleep(0.1)
        injector.disarm()
        assert injector.applied_counts() == {}

    def test_disarm_abandons_pending_events(self):
        plan = FaultPlan(
            seed=0, events=(FaultEvent(at_s=5.0, kind="worker_crash"),)
        )
        injector = FaultInjector(plan)
        fired: list = []
        injector.register("worker_crash", fired.append)
        injector.arm()
        injector.disarm()
        assert not fired and not injector.armed

    def test_seams_are_noops_when_unarmed(self):
        plan = FaultPlan(
            seed=0,
            events=(
                FaultEvent(at_s=0.0, kind="worker_stall", duration_s=10.0),
                FaultEvent(at_s=0.0, kind="socket_reset", duration_s=10.0),
            ),
        )
        injector = FaultInjector(plan)
        start = time.monotonic()
        injector.before_batch(0)
        assert time.monotonic() - start < 0.1  # no stall applied
        assert injector.http_response_fault() is None

    def test_stall_window_blocks_targeted_worker_only(self):
        plan = FaultPlan(
            seed=0,
            events=(
                FaultEvent(at_s=0.0, kind="worker_stall", target=0, duration_s=0.2),
            ),
        )
        injector = FaultInjector(plan)
        injector.arm()
        try:
            start = time.monotonic()
            injector.before_batch(1)  # untargeted worker sails through
            assert time.monotonic() - start < 0.1
            start = time.monotonic()
            injector.before_batch(0)  # targeted worker sleeps out the window
            assert time.monotonic() - start >= 0.1
            assert injector.elapsed_s() >= 0.2
        finally:
            injector.disarm()

    def test_slow_batch_adds_delay_inside_window(self):
        plan = FaultPlan(
            seed=0,
            events=(
                FaultEvent(
                    at_s=0.0, kind="slow_batch", duration_s=0.5, delay_ms=60.0
                ),
            ),
        )
        injector = FaultInjector(plan)
        injector.arm()
        try:
            start = time.monotonic()
            injector.before_batch(0)
            assert time.monotonic() - start >= 0.05
        finally:
            injector.disarm()

    def test_http_fault_budget_is_exact_under_concurrency(self):
        plan = FaultPlan(
            seed=0,
            events=(
                FaultEvent(
                    at_s=0.0, kind="socket_reset", duration_s=5.0, count=7
                ),
            ),
        )
        injector = FaultInjector(plan)
        injector.arm()
        try:
            hits: list[str] = []
            lock = threading.Lock()

            def probe() -> None:
                for _ in range(10):
                    fault = injector.http_response_fault()
                    if fault is not None:
                        with lock:
                            hits.append(fault)

            threads = [threading.Thread(target=probe) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # Exactly `count` responses are corrupted, however many
            # handler threads race through the window.
            assert hits == ["socket_reset"] * 7
            assert injector.applied_counts() == {"socket_reset": 7}
        finally:
            injector.disarm()

    def test_uncapped_window_fault_applies_throughout(self):
        plan = FaultPlan(
            seed=0,
            events=(
                FaultEvent(at_s=0.0, kind="malformed_response", duration_s=5.0),
            ),
        )
        injector = FaultInjector(plan)
        injector.arm()
        try:
            assert injector.http_response_fault() == "malformed_response"
            assert injector.http_response_fault() == "malformed_response"
        finally:
            injector.disarm()

    def test_rearm_after_disarm_raises(self):
        plan = FaultPlan(
            seed=0, events=(FaultEvent(at_s=0.01, kind="worker_crash"),)
        )
        injector = FaultInjector(plan)
        injector.arm()
        injector.disarm()
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm()
