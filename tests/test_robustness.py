"""Failure-injection tests: corrupted inputs and hostile edge cases."""

import json

import numpy as np
import pytest

from repro.core.dataset import HolistixDataset
from repro.core.instance import AnnotatedInstance, Post, Span
from repro.core.labels import WellnessDimension
from repro.ml.logistic import LogisticRegression
from repro.nn.layers import Linear
from repro.nn.serialization import load_weights, save_weights
from repro.text.vocab import Vocabulary


class TestCorruptedPersistence:
    def test_dataset_load_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "valid instance"}\n', encoding="utf-8")
        with pytest.raises(KeyError):
            HolistixDataset.load(path)

    def test_dataset_load_truncated_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"post_id": "x", "text": ', encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            HolistixDataset.load(path)

    def test_dataset_load_bad_label_code(self, tmp_path, small_dataset):
        payload = small_dataset[0].to_dict()
        payload["label"] = "ZZ"
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="unknown dimension"):
            HolistixDataset.load(path)

    def test_dataset_load_mismatched_span(self, tmp_path, small_dataset):
        payload = small_dataset[0].to_dict()
        payload["span_text"] = "completely different"
        payload["span_end"] = payload["span_start"] + len("completely different")
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="span"):
            HolistixDataset.load(path)

    def test_dataset_load_skips_blank_lines(self, tmp_path, small_dataset):
        path = tmp_path / "ok.jsonl"
        lines = [json.dumps(small_dataset[0].to_dict()), "", "   "]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        loaded = HolistixDataset.load(path)
        assert len(loaded) == 1

    def test_vocab_load_garbage(self, tmp_path):
        path = tmp_path / "vocab.json"
        path.write_text("not json at all", encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            Vocabulary.load(path)

    def test_weights_load_wrong_architecture(self, tmp_path):
        small = Linear(2, 2, seed=0)
        big = Linear(4, 4, seed=0)
        path = tmp_path / "weights.npz"
        save_weights(small, path)
        with pytest.raises(ValueError):
            load_weights(big, path)


class TestHostileInputs:
    def test_classifier_handles_oov_text(self, small_dataset):
        from repro.core.pipeline import WellnessClassifier

        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        clf = WellnessClassifier("LR").fit(split.train)
        # Entirely out-of-vocabulary text must still classify (zero
        # vector -> some deterministic class), not crash.
        predictions = clf.predict(["xylophone zucchini quasar"])
        assert len(predictions) == 1

    def test_classifier_handles_unicode(self, small_dataset):
        from repro.core.pipeline import WellnessClassifier

        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        clf = WellnessClassifier("LR").fit(split.train)
        predictions = clf.predict(["я чувствую себя 😢 très seul"])
        assert len(predictions) == 1

    def test_lr_with_single_class_training(self):
        x = np.random.default_rng(0).normal(size=(10, 3))
        y = np.zeros(10, dtype=np.int64)
        model = LogisticRegression(max_iter=20).fit(x, y)
        assert (model.predict(x) == 0).all()

    def test_span_locate_on_unicode(self):
        text = "je suis épuisé aujourd'hui"
        span = Span.locate(text, "épuisé")
        assert text[span.start : span.end] == "épuisé"

    def test_instance_with_emoji_roundtrip(self, tmp_path):
        post = Post("p1", "I feel 😞 lonely tonight.", "Depression")
        span = Span.locate(post.text, "lonely")
        inst = AnnotatedInstance(post, span, WellnessDimension.SOCIAL)
        clone = AnnotatedInstance.from_dict(
            json.loads(json.dumps(inst.to_dict()))
        )
        assert clone.span_text == "lonely"

    def test_very_long_input_truncated_by_transformer(self, small_dataset):
        from repro.models.classifier import TransformerClassifier
        from repro.models.config import MODEL_CONFIGS, scaled_for_tests

        vocab = Vocabulary.build(small_dataset.texts, max_size=500)
        model = TransformerClassifier(
            scaled_for_tests(MODEL_CONFIGS["BERT"]), vocab, 6
        )
        monster = " ".join(["word"] * 5000)
        ids = model.encode_batch([monster])
        assert ids.shape[1] <= model.config.max_len + 8
        assert model(ids).shape == (1, 6)
