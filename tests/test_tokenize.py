"""Tests for repro.text.tokenize."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import (
    count_sentences,
    count_words,
    iter_tokens,
    sent_tokenize,
    word_tokenize,
)


class TestWordTokenize:
    def test_lowercases(self):
        assert word_tokenize("Hello WORLD") == ["hello", "world"]

    def test_keeps_internal_apostrophe(self):
        assert word_tokenize("I can't sleep") == ["i", "can't", "sleep"]

    def test_keeps_internal_hyphen(self):
        assert word_tokenize("my 9-5 job") == ["my", "9-5", "job"]

    def test_strips_punctuation(self):
        assert word_tokenize("wait... what?!") == ["wait", "what"]

    def test_numbers_are_tokens(self):
        assert word_tokenize("slept 3 hours") == ["slept", "3", "hours"]

    def test_empty_string(self):
        assert word_tokenize("") == []

    def test_whitespace_only(self):
        assert word_tokenize("  \n\t ") == []

    def test_leading_apostrophe_not_attached(self):
        assert word_tokenize("'quoted'") == ["quoted"]

    def test_unicode_dashes_split(self):
        assert word_tokenize("life — meaning") == ["life", "meaning"]


class TestSentTokenize:
    def test_simple_split(self):
        assert sent_tokenize("I feel lost. Nothing helps! What now?") == [
            "I feel lost.",
            "Nothing helps!",
            "What now?",
        ]

    def test_repeated_terminators(self):
        assert sent_tokenize("Really?! Yes.") == ["Really?!", "Yes."]

    def test_no_terminal_punctuation(self):
        assert sent_tokenize("no punctuation here") == ["no punctuation here"]

    def test_abbreviation_not_split(self):
        sentences = sent_tokenize("I saw Dr. Smith today. It went fine.")
        assert len(sentences) == 2
        assert sentences[0] == "I saw Dr. Smith today."

    def test_empty(self):
        assert sent_tokenize("") == []

    def test_whitespace_only(self):
        assert sent_tokenize("   ") == []

    def test_single_sentence(self):
        assert sent_tokenize("One sentence only.") == ["One sentence only."]


class TestCounts:
    def test_count_words(self):
        assert count_words("one two three.") == 3

    def test_count_sentences(self):
        assert count_sentences("A. B. C.") == 3

    def test_iter_tokens_streams_documents(self):
        tokens = list(iter_tokens(["a b", "c"]))
        assert tokens == ["a", "b", "c"]


class TestProperties:
    @given(st.text(max_size=300))
    def test_word_tokenize_never_raises(self, text):
        tokens = word_tokenize(text)
        assert all(t == t.lower() for t in tokens)

    @given(st.text(max_size=300))
    def test_sentences_never_empty(self, text):
        assert all(s.strip() for s in sent_tokenize(text))

    @given(st.text(max_size=200))
    def test_word_count_matches_tokens(self, text):
        assert count_words(text) == len(word_tokenize(text))

    @given(st.lists(st.sampled_from(["alpha", "beta", "gamma"]), min_size=1, max_size=20))
    def test_tokens_roundtrip_simple_words(self, words):
        text = " ".join(words)
        assert word_tokenize(text) == words

    @given(st.text(max_size=200))
    def test_sentence_concatenation_preserves_words(self, text):
        direct = word_tokenize(text)
        via_sentences = [t for s in sent_tokenize(text) for t in word_tokenize(s)]
        assert via_sentences == direct
