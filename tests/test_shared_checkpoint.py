"""Lifecycle tests for the shared-memory checkpoint layer.

``SharedCheckpoint`` is the zero-copy weight channel under the
multi-process serving backend, so these tests pin the parts that are
easy to silently break: exact round-trips (including 0-d scalars, which
``ascontiguousarray`` likes to promote), read-only attacher views, the
in-place ``update`` + ``weights_version`` hot-reload protocol, owner vs
attacher cleanup responsibilities, and — the classic footgun — that an
attaching *process* exiting does not let the resource tracker unlink a
segment it never owned (cpython#82300).
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.nn.serialization import (
    SharedCheckpoint,
    collect_array_state,
    restore_array_state,
)


def sample_arrays() -> dict[str, np.ndarray]:
    return {
        "coef_": np.arange(12, dtype=np.float64).reshape(3, 4) / 7.0,
        "intercept_": np.array([0.1, -0.2, 0.3]),
        "classes_": np.arange(3, dtype=np.int64),
        "n_iter_": np.asarray(17),  # 0-d: the promotion trap
    }


class TestPublishAttachRoundTrip:
    def test_arrays_round_trip_exactly(self):
        arrays = sample_arrays()
        with SharedCheckpoint.publish(arrays) as owner:
            attached = SharedCheckpoint.attach(owner.manifest)
            try:
                # Copy-compare without binding views: a view held past
                # close() pins the buffer (the caveat the worker runtime
                # honours by dropping its engine before closing).
                for name, original in arrays.items():
                    assert attached.arrays[name].dtype == original.dtype
                    assert attached.arrays[name].shape == original.shape
                    np.testing.assert_array_equal(attached.arrays[name], original)
            finally:
                attached.close()

    def test_zero_d_arrays_keep_their_shape(self):
        with SharedCheckpoint.publish({"n_classes_": np.asarray(6)}) as owner:
            attached = SharedCheckpoint.attach(owner.manifest)
            try:
                assert attached.arrays["n_classes_"].shape == ()
                # restore_array_state unwraps 0-d to a Python scalar;
                # int() of a promoted (1,) vector would raise here.
                assert int(attached.arrays["n_classes_"]) == 6
            finally:
                attached.close()

    def test_estimator_state_round_trips_through_shared_memory(self):
        class Stub:
            pass

        fitted = Stub()
        fitted.coef_ = np.ones((2, 3))
        fitted.n_classes_ = 6
        state = collect_array_state(fitted)
        with SharedCheckpoint.publish(state) as owner:
            attached = SharedCheckpoint.attach(owner.manifest)
            try:
                restored = Stub()
                restore_array_state(restored, attached.arrays)
                assert restored.n_classes_ == 6
                assert isinstance(restored.n_classes_, int)
                np.testing.assert_array_equal(restored.coef_, fitted.coef_)
                # restore assigns the views by reference (that IS the
                # zero-copy contract) — release them before close().
                del restored
            finally:
                attached.close()

    def test_attacher_views_are_read_only(self):
        with SharedCheckpoint.publish(sample_arrays()) as owner:
            attached = SharedCheckpoint.attach(owner.manifest)
            try:
                with pytest.raises(ValueError):
                    attached.arrays["coef_"][0, 0] = 99.0
            finally:
                attached.close()

    def test_publish_empty_rejected(self):
        with pytest.raises(ValueError):
            SharedCheckpoint.publish({})


class TestHotReloadProtocol:
    def test_update_bumps_version_and_attacher_sees_new_bytes(self):
        arrays = sample_arrays()
        with SharedCheckpoint.publish(arrays, weights_version=5) as owner:
            attached = SharedCheckpoint.attach(owner.manifest)
            try:
                assert attached.weights_version == 5
                new_arrays = {k: v * 2.0 if k == "coef_" else v for k, v in arrays.items()}
                assert owner.update(new_arrays) == 6
                # No re-attach: the same views show the new bytes.
                assert attached.weights_version == 6
                np.testing.assert_array_equal(
                    attached.arrays["coef_"], arrays["coef_"] * 2.0
                )
            finally:
                attached.close()

    def test_update_rejects_name_mismatch(self):
        with (
            SharedCheckpoint.publish(sample_arrays()) as owner,
            pytest.raises(ValueError, match="array-name mismatch"),
        ):
            owner.update({"coef_": np.zeros((3, 4))})

    def test_update_rejects_layout_mismatch(self):
        arrays = sample_arrays()
        with SharedCheckpoint.publish(arrays) as owner:
            wrong = dict(arrays)
            wrong["coef_"] = np.zeros((4, 3))
            with pytest.raises(ValueError, match="layout mismatch"):
                owner.update(wrong)

    def test_attacher_may_not_update_or_unlink(self):
        arrays = sample_arrays()
        with SharedCheckpoint.publish(arrays) as owner:
            attached = SharedCheckpoint.attach(owner.manifest)
            try:
                with pytest.raises(PermissionError):
                    attached.update(arrays)
                with pytest.raises(PermissionError):
                    attached.unlink()
            finally:
                attached.close()


def _attach_and_exit(manifest, ok_queue) -> None:
    """Child-process body: attach, read, close, exit.

    Run in a separate process so its interpreter exit (where the
    resource tracker fires) happens while the parent still needs the
    segment.
    """
    attached = SharedCheckpoint.attach(manifest)
    total = float(sum(view.sum() for view in attached.arrays.values()))
    attached.close()
    ok_queue.put(total)


class TestCleanupOwnership:
    def test_unlink_destroys_segment_and_is_idempotent(self):
        owner = SharedCheckpoint.publish(sample_arrays())
        manifest = owner.manifest
        owner.unlink()
        owner.unlink()  # second unlink is a no-op, not an error
        with pytest.raises(FileNotFoundError):
            SharedCheckpoint.attach(manifest)

    def test_attacher_close_leaves_segment_alive(self):
        with SharedCheckpoint.publish(sample_arrays()) as owner:
            attached = SharedCheckpoint.attach(owner.manifest)
            attached.close()
            attached.close()  # idempotent
            # The segment must still be attachable after an attacher left.
            again = SharedCheckpoint.attach(owner.manifest)
            again.close()

    @pytest.mark.parametrize(
        "start_method",
        [
            m
            for m in ("fork", "spawn")
            if m in multiprocessing.get_all_start_methods()
        ],
    )
    def test_attaching_process_exit_does_not_unlink(self, start_method):
        """cpython#82300: an exiting attacher must not reap the segment.

        Two sequential attacher processes also exercise the fork-shared
        resource-tracker cache — with tracked attachments the second
        registration/unregistration pair races the tracker daemon into a
        KeyError and the segment vanishes under the owner.
        """
        ctx = multiprocessing.get_context(start_method)
        arrays = sample_arrays()
        expected = float(sum(np.asarray(v).sum() for v in arrays.values()))
        with SharedCheckpoint.publish(arrays) as owner:
            for _ in range(2):
                ok_queue = ctx.Queue()
                child = ctx.Process(
                    target=_attach_and_exit, args=(owner.manifest, ok_queue)
                )
                child.start()
                total = ok_queue.get(timeout=60)
                child.join(timeout=60)
                assert child.exitcode == 0
                assert total == pytest.approx(expected)
                # The owner's mapping must still be intact and attachable.
                assert owner.weights_version == 1
                probe = SharedCheckpoint.attach(owner.manifest)
                probe.close()
