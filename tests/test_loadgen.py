"""Tests for the open-loop load generation substrate (``repro.loadgen``).

Pins the three honesty rules the open-loop runner exists for:

1. latency is charged from the *intended* send time, so transport
   backlog shows up in the histogram instead of shrinking offered load;
2. the in-flight cap is deadline-aware — arrivals that cannot be sent in
   time are dropped *and charged the full deadline*;
3. failures are typed and counted, and the accounting invariant
   ``scheduled == completed + failed + dropped`` always holds.

Plus the coordinated-omission regression test: with an injected
whole-service stall, the naive closed-loop measurement must under-report
p99 while the open-loop one surfaces it, and the gap must stay >= 2x.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.corpus.factory import CorpusFactory
from repro.engine.engine import PredictionEngine
from repro.engine.server import InferenceServer
from repro.loadgen import (
    ArrivalSchedule,
    LatencyHistogram,
    fixed_rate_schedule,
    poisson_schedule,
    run_closed_loop,
    run_open_loop,
)
from repro.serving.client import GatewayOverloaded, ServingClient
from repro.serving.gateway import ServingGateway

TEXTS = ["alpha text", "beta text", "gamma text"]


def instant_send(text: str, intended_at: float) -> None:
    return


# ----------------------------------------------------------------------
# Arrival schedules
# ----------------------------------------------------------------------
class TestSchedules:
    def test_fixed_rate_gaps_are_exact(self):
        schedule = fixed_rate_schedule(100.0, n=10)
        assert len(schedule) == 10
        assert schedule.times == tuple(pytest.approx(i / 100.0) for i in range(10))
        assert schedule.duration_s == pytest.approx(0.1)
        assert schedule.kind == "fixed"

    def test_poisson_is_deterministic_per_seed(self):
        a = poisson_schedule(200.0, n=500, seed=42)
        b = poisson_schedule(200.0, n=500, seed=42)
        c = poisson_schedule(200.0, n=500, seed=43)
        assert a.times == b.times
        assert a.times != c.times
        assert a.kind == "poisson"

    def test_poisson_mean_gap_matches_rate(self):
        schedule = poisson_schedule(200.0, n=5000, seed=7)
        gaps = np.diff(schedule.times)
        assert gaps.mean() == pytest.approx(1 / 200.0, rel=0.05)
        assert (gaps >= 0).all()

    def test_duration_and_n_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            fixed_rate_schedule(10.0)
        with pytest.raises(ValueError):
            fixed_rate_schedule(10.0, duration_s=1.0, n=10)
        with pytest.raises(ValueError):
            poisson_schedule(0.0, n=10)
        with pytest.raises(ValueError):
            fixed_rate_schedule(10.0, duration_s=-1.0)

    def test_schedule_validates_times(self):
        with pytest.raises(ValueError):
            ArrivalSchedule("fixed", 10.0, 0, times=(0.2, 0.1))
        with pytest.raises(ValueError):
            ArrivalSchedule("fixed", 10.0, 0, times=(-0.1, 0.1))
        with pytest.raises(ValueError):
            ArrivalSchedule("fixed", -1.0, 0, times=(0.0,))

    def test_trace_round_trip(self, tmp_path):
        schedule = poisson_schedule(120.0, n=64, seed=11)
        path = schedule.save(tmp_path / "trace.json")
        replayed = ArrivalSchedule.load(path)
        assert replayed == schedule

    def test_unknown_trace_version_rejected(self):
        payload = poisson_schedule(10.0, n=3, seed=0).to_dict()
        payload["trace_version"] = 99
        with pytest.raises(ValueError, match="trace_version"):
            ArrivalSchedule.from_dict(payload)


# ----------------------------------------------------------------------
# HDR-style histogram
# ----------------------------------------------------------------------
class TestLatencyHistogram:
    def test_percentiles_within_relative_error_bound(self):
        rng = np.random.default_rng(3)
        samples = np.exp(rng.normal(1.5, 1.0, size=20_000))  # lognormal ms
        histogram = LatencyHistogram()
        for value in samples:
            histogram.record(float(value))
        ordered = np.sort(samples)
        for q in (50, 90, 95, 99, 99.9):
            exact = ordered[max(0, int(np.ceil(len(ordered) * q / 100.0)) - 1)]
            reported = histogram.percentile(q)
            assert reported == pytest.approx(exact, rel=0.03), f"p{q}"

    def test_max_is_exact(self):
        histogram = LatencyHistogram()
        for value in (1.0, 250.0, 3.7):
            histogram.record(value)
        assert histogram.max_ms == 250.0
        assert histogram.percentile(100) == 250.0

    def test_record_n_counts(self):
        histogram = LatencyHistogram()
        histogram.record(5.0, n=10)
        histogram.record(500.0)
        assert histogram.count == 11
        assert histogram.percentile(50) == pytest.approx(5.0, rel=0.03)

    def test_merge_equals_combined_recording(self):
        rng = np.random.default_rng(5)
        left, right, combined = (
            LatencyHistogram(),
            LatencyHistogram(),
            LatencyHistogram(),
        )
        for value in rng.exponential(20.0, size=2000):
            left.record(float(value))
            combined.record(float(value))
        for value in rng.exponential(80.0, size=2000):
            right.record(float(value))
            combined.record(float(value))
        left.merge(right)
        assert left.count == combined.count
        assert left.percentile(99) == combined.percentile(99)
        assert left.max_ms == combined.max_ms

    def test_merge_rejects_different_buckets(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(growth=1.1))

    def test_round_trip_preserves_distribution(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.5, 3.0, 3.1, 900.0):
            histogram.record(value)
        clone = LatencyHistogram.from_dict(histogram.to_dict())
        assert clone.count == histogram.count
        assert clone.percentiles() == histogram.percentiles()

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(99) == 0.0
        assert histogram.mean_ms() == 0.0
        assert histogram.percentiles()["max_ms"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(lowest_ms=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)
        with pytest.raises(ValueError):
            LatencyHistogram().record(1.0, n=0)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)


# ----------------------------------------------------------------------
# Open-loop runner semantics
# ----------------------------------------------------------------------
class TestOpenLoopRunner:
    def test_accounting_invariant_on_clean_run(self):
        schedule = fixed_rate_schedule(500.0, n=250)
        result = run_open_loop(schedule, instant_send, TEXTS, max_in_flight=16)
        assert result.scheduled == 250
        assert result.completed == 250
        assert result.failed == 0 and result.dropped == 0
        assert result.error_types == {}
        assert result.achieved_rate_rps == pytest.approx(500.0, rel=0.25)
        assert result.offered_rate_rps == 500.0
        assert result.histogram.count == 250

    def test_backlog_charged_to_intended_time(self):
        # One transport slot, 50 ms per send, arrivals 10 ms apart: each
        # send takes 50 ms of wall clock, but queue wait accrues from the
        # intended arrival, so recorded latency must grow far beyond the
        # 50 ms service time.
        def slow_send(text: str, intended_at: float) -> None:
            time.sleep(0.05)

        schedule = fixed_rate_schedule(100.0, n=6)
        result = run_open_loop(
            schedule, slow_send, TEXTS, max_in_flight=1, deadline_s=10.0
        )
        assert result.completed == 6
        # Last request: intended at 50 ms, finished near 6 * 50 = 300 ms.
        assert result.histogram.max_ms > 150.0

    def test_late_arrivals_dropped_and_charged_full_deadline(self):
        def very_slow_send(text: str, intended_at: float) -> None:
            time.sleep(0.3)

        schedule = fixed_rate_schedule(100.0, n=5)
        result = run_open_loop(
            schedule, very_slow_send, TEXTS, max_in_flight=1, deadline_s=0.1
        )
        assert result.scheduled == 5
        assert result.completed + result.failed + result.dropped == 5
        assert result.dropped >= 3
        # Drops are charged exactly the deadline: the tail cannot hide.
        assert result.histogram.max_ms >= 100.0

    def test_failures_are_typed_and_counted(self):
        def flaky_send(text: str, intended_at: float) -> None:
            if text == "beta text":
                raise ValueError("injected")

        schedule = fixed_rate_schedule(300.0, n=30)
        result = run_open_loop(schedule, flaky_send, TEXTS, max_in_flight=8)
        assert result.failed == 10  # every 3rd text round-robin
        assert result.completed == 20
        assert result.error_types == {"ValueError": 10}
        assert result.histogram.count == 30

    def test_validation(self):
        schedule = fixed_rate_schedule(10.0, n=2)
        with pytest.raises(ValueError):
            run_open_loop(schedule, instant_send, [])
        with pytest.raises(ValueError):
            run_open_loop(schedule, instant_send, TEXTS, max_in_flight=0)
        with pytest.raises(ValueError):
            run_open_loop(schedule, instant_send, TEXTS, deadline_s=0.0)

    def test_summary_is_flat_and_json_ready(self):
        result = run_open_loop(
            fixed_rate_schedule(200.0, n=20), instant_send, TEXTS
        )
        summary = result.summary()
        assert summary["mode"] == "open"
        assert summary["scheduled"] == 20
        for key in ("p50_ms", "p95_ms", "p99_ms", "p999_ms", "max_ms"):
            assert isinstance(summary[key], float)


class TestClosedLoopRunner:
    def test_counts_and_reported_rate(self):
        def quick_send(text: str, sent_at: float) -> None:
            time.sleep(0.001)

        result = run_closed_loop(quick_send, TEXTS, n_clients=2, duration_s=0.3)
        assert result.mode == "closed"
        assert result.completed > 0
        assert result.dropped == 0
        assert result.scheduled == result.completed + result.failed
        # The methodological flaw, stated in the data: a closed loop can
        # only "offer" what the server achieved.
        assert result.offered_rate_rps == result.achieved_rate_rps

    def test_validation(self):
        with pytest.raises(ValueError):
            run_closed_loop(instant_send, [])
        with pytest.raises(ValueError):
            run_closed_loop(instant_send, TEXTS, n_clients=0)
        with pytest.raises(ValueError):
            run_closed_loop(instant_send, TEXTS, duration_s=0.0)


# ----------------------------------------------------------------------
# Coordinated omission: the regression test for the whole methodology
# ----------------------------------------------------------------------
class _StallingTransport:
    """~2 ms service with one global ~500 ms pause after 20 requests.

    The pause freezes *every* caller (as a GC pause or page fault
    would), not just the thread that triggered it — a per-thread sleep
    would be absorbed by the other closed-loop clients and the
    demonstration would be dishonest.
    """

    def __init__(self, stall_after: int = 20, stall_s: float = 0.5) -> None:
        self.stall_after = stall_after
        self.stall_s = stall_s
        self._served = 0
        self._stall_until: float | None = None
        self._lock = threading.Lock()

    def __call__(self, text: str, intended_at: float) -> None:
        with self._lock:
            self._served += 1
            if self._stall_until is None and self._served >= self.stall_after:
                self._stall_until = time.monotonic() + self.stall_s
            until = self._stall_until
        if until is not None:
            now = time.monotonic()
            if now < until:
                time.sleep(until - now)
        time.sleep(0.002)


class TestCoordinatedOmission:
    def test_closed_loop_hides_the_stall_open_loop_charges_it(self):
        closed = run_closed_loop(
            _StallingTransport(), TEXTS, n_clients=4, duration_s=1.5
        )
        open_result = run_open_loop(
            fixed_rate_schedule(200.0, duration_s=1.5, seed=1),
            _StallingTransport(),
            TEXTS,
            max_in_flight=256,
            deadline_s=10.0,
        )
        assert open_result.dropped == 0 and open_result.failed == 0
        # Open loop: every request due during the 500 ms stall is charged
        # its backlog wait, so the stall dominates p99.
        assert open_result.p99_ms > 100.0
        # Closed loop: only n_clients requests ever observe the stall,
        # which is far less than 1% of what 4 clients complete in 1.5 s.
        assert closed.p99_ms < 100.0
        gap = open_result.p99_ms / closed.p99_ms
        assert gap >= 2.0, f"coordinated-omission gap collapsed: {gap:.1f}x"


# ----------------------------------------------------------------------
# End to end: the serving stack under open-loop load
# ----------------------------------------------------------------------
class _TinyBackend:
    n_classes = 6

    def proba_batch(self, texts):
        time.sleep(0.001)
        return np.full((len(texts), 6), 1.0 / 6.0)


def _make_server() -> InferenceServer:
    return InferenceServer(
        PredictionEngine(_TinyBackend(), model_id="loadgen-test", cache_size=0),
        workers=2,
        max_batch_size=8,
        max_wait_ms=0.5,
        max_queue=256,
        overload="block",
    )


class TestServingIntegration:
    def test_open_loop_against_inference_server(self):
        texts = CorpusFactory().texts(900, 256)
        server = _make_server()
        with server:
            result = run_open_loop(
                poisson_schedule(150.0, duration_s=1.0, seed=2),
                lambda text, at: server.submit(text).result(timeout=30),
                texts,
                max_in_flight=32,
            )
        assert result.completed == result.scheduled
        assert result.failed == 0 and result.dropped == 0
        assert result.p99_ms < 1000.0

    def test_open_loop_through_http_gateway(self):
        texts = CorpusFactory().texts(901, 64)
        server = _make_server()
        with ServingGateway(server) as gateway:
            client = ServingClient(gateway.url, deadline_s=10.0)
            client.wait_ready(deadline_s=10.0)
            result = run_open_loop(
                poisson_schedule(40.0, duration_s=1.0, seed=3),
                lambda text, at: client.predict(text, intended_at=at),
                texts,
                max_in_flight=16,
            )
        assert result.completed == result.scheduled
        assert result.failed == 0 and result.dropped == 0

    def test_client_deadline_anchors_at_intended_time(self):
        # An intended_at far enough in the past exhausts the budget
        # before the first attempt: the client must fail fast (no
        # network touched — the port below is not listening).
        client = ServingClient("http://127.0.0.1:9", deadline_s=5.0)
        started = time.monotonic()
        with pytest.raises(GatewayOverloaded, match="deadline_exceeded"):
            client.predict("text", intended_at=time.monotonic() - 60.0)
        assert time.monotonic() - started < 1.0
