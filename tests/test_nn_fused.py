"""Tests for the fused kernels, flat optimiser, and bucketed batching.

Every fused op gets (a) a finite-difference gradient check, in the same
style as ``test_nn_tensor``, and (b) a fused-vs-composed equivalence
check on random shapes — ``use_fused_ops(False)`` routes the exact same
module code through the primitive-op fallback, so forward outputs and
input/parameter gradients must agree to float32 round-off.
"""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention, _causal_mask, _relative_buckets
from repro.nn.batching import padded_token_count, window_bucketed_batches
from repro.nn.functional import (
    dropout,
    fused_ops_enabled,
    layer_norm,
    linear,
    scaled_dot,
    use_fused_ops,
)
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.optim import Adam, AdamW, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad, tape_node_count


def numeric_gradient(fn, x0, eps=1e-3):
    grad = np.zeros_like(x0)
    it = np.nditer(x0, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        plus = x0.copy()
        plus[idx] += eps
        minus = x0.copy()
        minus[idx] -= eps
        grad[idx] = (fn(Tensor(plus)).item() - fn(Tensor(minus)).item()) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(fn, shape, seed=0, tol=5e-2):
    rng = np.random.default_rng(seed)
    x0 = rng.normal(size=shape).astype(np.float32)
    x = Tensor(x0, requires_grad=True)
    fn(x).backward()
    numeric = numeric_gradient(fn, x0)
    np.testing.assert_allclose(x.grad, numeric, atol=tol, rtol=tol)


class TestFusedGradients:
    """Finite differences against every fused backward rule."""

    def test_layer_norm_input(self):
        gain = Tensor(np.linspace(0.5, 1.5, 6).astype(np.float32))
        shift = Tensor(np.linspace(-1, 1, 6).astype(np.float32))
        check_gradient(
            lambda x: (layer_norm(x, gain, shift) ** 2).sum(), (3, 6)
        )

    def test_layer_norm_gain_and_shift(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(4, 5)).astype(np.float32))
        c = Tensor(rng.normal(size=(4, 5)).astype(np.float32))
        check_gradient(
            lambda g: (layer_norm(x, g, Tensor(np.zeros(5))) * c).sum(), (5,)
        )
        check_gradient(
            lambda s: (layer_norm(x, Tensor(np.ones(5)), s) * c).sum(), (5,)
        )

    def test_linear_input_2d(self):
        w = Tensor(np.random.default_rng(4).normal(size=(4, 3)).astype(np.float32))
        b = Tensor(np.ones(3, dtype=np.float32))
        check_gradient(lambda x: (linear(x, w, b) ** 2).sum(), (2, 4))

    def test_linear_input_3d(self):
        w = Tensor(np.random.default_rng(5).normal(size=(4, 3)).astype(np.float32))
        check_gradient(lambda x: (linear(x, w) ** 2).sum(), (2, 3, 4))

    def test_linear_weight_and_bias(self):
        rng = np.random.default_rng(6)
        x = Tensor(rng.normal(size=(2, 3, 4)).astype(np.float32))
        check_gradient(lambda w: (linear(x, w) ** 2).sum(), (4, 2))
        w = Tensor(rng.normal(size=(4, 2)).astype(np.float32))
        check_gradient(lambda b: (linear(x, w, b) ** 2).sum(), (2,))

    def test_scaled_dot_query_and_key(self):
        rng = np.random.default_rng(7)
        k = Tensor(rng.normal(size=(2, 2, 5, 3)).astype(np.float32))
        check_gradient(
            lambda q: (scaled_dot(q, k, 0.57) ** 2).sum(), (2, 2, 4, 3), tol=0.1
        )
        q = Tensor(rng.normal(size=(2, 2, 4, 3)).astype(np.float32))
        check_gradient(
            lambda kk: (scaled_dot(q, kk, 0.57) ** 2).sum(), (2, 2, 5, 3), tol=0.1
        )

    def test_relative_bias_gather(self):
        attn = MultiHeadAttention(8, 2, relative_positions=True, seed=0)

        def fn(bias):
            attn.rel_bias = bias
            return (attn._relative_bias(4, 5) ** 2).sum()

        check_gradient(fn, attn.rel_bias.data.shape)


class TestFusedEquivalence:
    """Fused kernels and composed fallbacks agree on random shapes."""

    @pytest.mark.parametrize("shape", [(2, 6), (3, 4, 8), (1, 1, 5)])
    def test_layer_norm(self, shape):
        rng = np.random.default_rng(hash(shape) % 2**31)
        x0 = rng.normal(1.0, 2.0, size=shape).astype(np.float32)
        dim = shape[-1]
        outs, grads = [], []
        for fused in (True, False):
            with use_fused_ops(fused):
                ln = LayerNorm(dim)
                x = Tensor(x0, requires_grad=True)
                out = ln(x)
                (out * out).sum().backward()
                outs.append(out.data)
                grads.append((x.grad, ln.gain.grad, ln.shift.grad))
        np.testing.assert_allclose(outs[0], outs[1], atol=1e-5)
        for fused_grad, composed_grad in zip(*grads):
            np.testing.assert_allclose(fused_grad, composed_grad, atol=1e-4)

    @pytest.mark.parametrize("shape", [(3, 5), (2, 4, 5), (1, 7, 5)])
    def test_linear(self, shape):
        rng = np.random.default_rng(sum(shape))
        x0 = rng.normal(size=shape).astype(np.float32)
        outs, grads = [], []
        for fused in (True, False):
            with use_fused_ops(fused):
                layer = Linear(shape[-1], 3, seed=9)
                x = Tensor(x0, requires_grad=True)
                out = layer(x)
                (out * out).sum().backward()
                outs.append(out.data)
                grads.append((x.grad, layer.weight.grad, layer.bias.grad))
        np.testing.assert_allclose(outs[0], outs[1], atol=1e-5)
        for fused_grad, composed_grad in zip(*grads):
            np.testing.assert_allclose(
                fused_grad, composed_grad, atol=1e-4, rtol=1e-4
            )

    @pytest.mark.parametrize("causal,relative", [(False, False), (True, False), (False, True)])
    def test_attention_forward_and_grads(self, causal, relative):
        rng = np.random.default_rng(11)
        x0 = rng.normal(size=(2, 6, 8)).astype(np.float32)
        outs, grads = [], []
        for fused in (True, False):
            with use_fused_ops(fused):
                attn = MultiHeadAttention(
                    8, 2, causal=causal, relative_positions=relative, seed=3
                )
                x = Tensor(x0, requires_grad=True)
                out = attn(x)
                (out * out).sum().backward()
                outs.append(out.data)
                grads.append(x.grad)
        np.testing.assert_allclose(outs[0], outs[1], atol=1e-5)
        np.testing.assert_allclose(grads[0], grads[1], atol=1e-4, rtol=1e-4)

    def test_toggle_restores(self):
        assert fused_ops_enabled()
        with use_fused_ops(False):
            assert not fused_ops_enabled()
            with use_fused_ops(True):
                assert fused_ops_enabled()
            assert not fused_ops_enabled()
        assert fused_ops_enabled()


class TestInferenceFastPath:
    def test_no_grad_builds_zero_tape_nodes(self):
        attn = MultiHeadAttention(8, 2, causal=True, relative_positions=True, seed=0)
        ln = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 8)).astype(np.float32))
        before = tape_node_count()
        with no_grad():
            out = ln(attn(x))
        assert tape_node_count() == before
        assert out._parents == () and out._backward_fn is None

    def test_training_path_still_tapes(self):
        ln = LayerNorm(4)
        x = Tensor(np.ones((2, 4), dtype=np.float32), requires_grad=True)
        before = tape_node_count()
        ln(x)
        assert tape_node_count() > before

    def test_dropout_identity_paths_return_same_object(self):
        x = Tensor(np.ones((3, 3), dtype=np.float32), requires_grad=True)
        module = Dropout(0.0, seed=0)
        assert module(x) is x
        module = Dropout(0.5, seed=0)
        module.eval()
        assert module(x) is x
        rng = np.random.default_rng(0)
        assert dropout(x, 0.0, rng, training=True) is x

    def test_active_dropout_still_masks(self):
        x = Tensor(np.ones((64, 64), dtype=np.float32))
        module = Dropout(0.5, seed=0)
        out = module(x)
        assert out is not x
        assert (out.data == 0.0).any()


class TestAttentionGeometryCache:
    def test_causal_mask_cached_and_immutable(self):
        a = _causal_mask(7, 7)
        b = _causal_mask(7, 7)
        assert a is b
        assert not a.flags.writeable
        assert a.shape == (1, 1, 7, 7)
        assert a[0, 0, 0, 1] and not a[0, 0, 1, 0]

    def test_relative_buckets_cached(self):
        a = _relative_buckets(5, 6, 4)
        assert a is _relative_buckets(5, 6, 4)
        assert a.shape == (30,)
        assert a.min() >= 0 and a.max() <= 8

    def test_scale_folded_into_scores(self):
        attn = MultiHeadAttention(8, 4, seed=0)
        assert attn.scale == pytest.approx(1.0 / np.sqrt(2.0))


class _ReferenceAdam:
    """The pre-flat per-parameter Adam loop, kept verbatim as the oracle."""

    def __init__(self, parameters, lr, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=None):
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self.t += 1
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            if self.weight_decay is not None:
                p.data -= self.lr * self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * p.grad
            v *= self.beta2
            v += (1 - self.beta2) * p.grad**2
            m_hat = m / (1 - self.beta1**self.t)
            v_hat = v / (1 - self.beta2**self.t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def _make_params(seed, shapes=((4, 3), (3,), (2, 2, 2))):
    rng = np.random.default_rng(seed)
    return [
        Tensor(rng.normal(size=s).astype(np.float32), requires_grad=True)
        for s in shapes
    ]


def _random_grads(params, rng):
    for p in params:
        p.grad = rng.normal(size=p.data.shape).astype(np.float32)


class TestFlatOptimizers:
    def test_adam_matches_reference_loop(self):
        flat_params = _make_params(0)
        ref_params = _make_params(0)
        flat = Adam(flat_params, 0.01)
        ref = _ReferenceAdam(ref_params, 0.01)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        for _ in range(20):
            _random_grads(flat_params, rng_a)
            _random_grads(ref_params, rng_b)
            flat.step()
            ref.step()
        for fp, rp in zip(flat_params, ref_params):
            np.testing.assert_allclose(fp.data, rp.data, atol=1e-6, rtol=1e-5)

    def test_adamw_matches_reference_loop(self):
        flat_params = _make_params(1)
        ref_params = _make_params(1)
        flat = AdamW(flat_params, 0.01, weight_decay=0.1)
        ref = _ReferenceAdam(ref_params, 0.01, weight_decay=0.1)
        rng_a, rng_b = np.random.default_rng(6), np.random.default_rng(6)
        for _ in range(10):
            _random_grads(flat_params, rng_a)
            _random_grads(ref_params, rng_b)
            flat.step()
            ref.step()
        for fp, rp in zip(flat_params, ref_params):
            np.testing.assert_allclose(fp.data, rp.data, atol=1e-5, rtol=1e-4)

    def test_gradless_parameters_untouched(self):
        params = _make_params(2)
        frozen = params[1].data.copy()
        opt = Adam(params, 0.05)
        rng = np.random.default_rng(7)
        for _ in range(5):
            params[0].grad = rng.normal(size=params[0].shape).astype(np.float32)
            params[2].grad = rng.normal(size=params[2].shape).astype(np.float32)
            params[1].grad = None
            opt.step()
        np.testing.assert_array_equal(params[1].data, frozen)

    def test_live_set_change_migrates_moments(self):
        params = _make_params(3)
        opt = Adam(params, 0.01)
        ref_params = _make_params(3)
        ref = _ReferenceAdam(ref_params, 0.01)
        rng_a, rng_b = np.random.default_rng(8), np.random.default_rng(8)
        # Phase 1: only the first two params receive grads.
        for _ in range(4):
            for group in (params, ref_params):
                rng = rng_a if group is params else rng_b
                group[0].grad = rng.normal(size=group[0].shape).astype(np.float32)
                group[1].grad = rng.normal(size=group[1].shape).astype(np.float32)
                group[2].grad = None
            opt.step()
            ref.step()
        # Phase 2: all three — moments of 0 and 1 must carry over.
        for _ in range(4):
            _random_grads(params, rng_a)
            _random_grads(ref_params, rng_b)
            opt.step()
            ref.step()
        for fp, rp in zip(params, ref_params):
            np.testing.assert_allclose(fp.data, rp.data, atol=1e-6, rtol=1e-5)

    def test_intermittent_grads_keep_moments(self):
        # A param that misses a step must resume from its accumulated
        # moments (like the classic skip-if-None loop), not restart at 0.
        params = _make_params(11)
        ref_params = _make_params(11)
        opt = Adam(params, 0.01)
        ref = _ReferenceAdam(ref_params, 0.01)
        rng_a, rng_b = np.random.default_rng(12), np.random.default_rng(12)
        for step in range(6):
            for group, rng in ((params, rng_a), (ref_params, rng_b)):
                for i, p in enumerate(group):
                    skip = step == 2 and i == 1  # param 1 misses step 2
                    p.grad = (
                        None
                        if skip
                        else rng.normal(size=p.data.shape).astype(np.float32)
                    )
            opt.step()
            ref.step()
        for fp, rp in zip(params, ref_params):
            np.testing.assert_allclose(fp.data, rp.data, atol=1e-6, rtol=1e-5)

    def test_flat_clip_scales_param_grads(self):
        params = _make_params(12)
        _random_grads(params, np.random.default_rng(13))
        opt = Adam(params, 0.01)
        norm = opt.clip_grad_norm(0.5)
        assert norm > 0.5
        clipped = np.sqrt(sum(float((p.grad**2).sum()) for p in params))
        assert clipped == pytest.approx(0.5, rel=1e-4)

    def test_flat_clip_matches_function(self):
        params_a = _make_params(4)
        params_b = _make_params(4)
        rng_a, rng_b = np.random.default_rng(9), np.random.default_rng(9)
        _random_grads(params_a, rng_a)
        _random_grads(params_b, rng_b)
        opt = Adam(params_a, 0.01)
        norm_flat = opt.clip_grad_norm(0.5)
        norm_fn = clip_grad_norm(params_b, 0.5)
        assert norm_flat == pytest.approx(norm_fn, rel=1e-5)
        opt.step()  # consumes the clipped flat buffer
        ref = _ReferenceAdam(params_b, 0.01)
        ref.step()
        for fp, rp in zip(params_a, params_b):
            np.testing.assert_allclose(fp.data, rp.data, atol=1e-6)

    def test_zero_grad_discards_gathered_buffer(self):
        params = _make_params(5)
        opt = Adam(params, 0.01)
        _random_grads(params, np.random.default_rng(10))
        opt.clip_grad_norm(1.0)
        before = [p.data.copy() for p in params]
        opt.zero_grad()
        opt.step()  # no grads: must be a no-op, not a stale-buffer update
        for p, prior in zip(params, before):
            np.testing.assert_array_equal(p.data, prior)


class TestWindowBucketedBatches:
    def test_covers_order_exactly_once(self):
        rng = np.random.default_rng(0)
        lengths = rng.integers(3, 40, size=100).tolist()
        order = rng.permutation(96)
        batches = list(window_bucketed_batches(order, lengths, 8, window=4))
        flat = [i for b in batches for i in b]
        assert sorted(flat) == sorted(order.tolist())
        assert all(len(b) == 8 for b in batches)

    def test_window_one_is_plain_slicing(self):
        order = list(range(10))
        lengths = [5] * 10
        batches = list(window_bucketed_batches(order, lengths, 4, window=1))
        assert batches == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_bucketing_reduces_padding(self):
        rng = np.random.default_rng(1)
        lengths = rng.integers(4, 64, size=256).tolist()
        order = rng.permutation(256)
        plain = padded_token_count(
            lengths, window_bucketed_batches(order, lengths, 16, window=1)
        )
        bucketed = padded_token_count(
            lengths, window_bucketed_batches(order, lengths, 16, window=8)
        )
        assert bucketed < plain * 0.85

    def test_stable_on_equal_lengths(self):
        # Equal lengths: sorting must preserve the shuffled order.
        order = [5, 2, 9, 1, 7, 0]
        lengths = [3] * 10
        batches = list(window_bucketed_batches(order, lengths, 2, window=3))
        assert [i for b in batches for i in b] == order

    def test_rng_shuffles_batch_order_not_membership(self):
        rng = np.random.default_rng(2)
        lengths = list(range(64))
        order = list(range(64))
        plain = list(window_bucketed_batches(order, lengths, 8, window=8))
        shuffled = list(
            window_bucketed_batches(order, lengths, 8, window=8, rng=rng)
        )
        assert sorted(map(tuple, plain)) == sorted(map(tuple, shuffled))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(window_bucketed_batches([1], [1, 1], 0))
