"""Tests for the §V future-work features: multi-label, span prediction,
dimension interactions."""

import numpy as np
import pytest

from repro.core.interactions import analyze_interactions, build_interaction_graph
from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.explain.span_predictor import (
    SpanPredictor,
    evaluate_span_predictions,
)
from repro.ml.multilabel import (
    OneVsRestClassifier,
    multilabel_metrics,
)
from repro.text.tfidf import TfidfVectorizer


class TestMultiLabelSets:
    def test_dataset_exposes_label_sets(self, small_dataset):
        sets = small_dataset.multi_label_sets()
        assert len(sets) == len(small_dataset)
        for labels, inst in zip(sets, small_dataset):
            assert inst.label in labels
            assert len(labels) >= 1

    def test_balanced_posts_have_two_labels(self, small_dataset):
        # Noisy posts are excluded: their adjudicated label can coincide
        # with the content's secondary dimension, collapsing the set.
        sets = small_dataset.multi_label_sets()
        balanced = [
            s
            for s, inst in zip(sets, small_dataset)
            if inst.metadata.get("post_type") == "balanced"
            and not inst.metadata.get("noisy")
        ]
        assert balanced
        assert all(len(s) == 2 for s in balanced)


class TestOneVsRest:
    @pytest.fixture(scope="class")
    def fitted(self, small_dataset):
        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        vectorizer = TfidfVectorizer(max_features=1500)
        x_train = vectorizer.fit_transform(split.train.texts)
        x_test = vectorizer.transform(split.test.texts)
        train_sets = split.train.multi_label_sets()
        test_sets = split.test.multi_label_sets()
        model = OneVsRestClassifier(list(DIMENSIONS)).fit(x_train, train_sets)
        return model, x_test, test_sets

    def test_predictions_never_empty(self, fitted):
        model, x_test, _ = fitted
        for label_set in model.predict(x_test):
            assert label_set

    def test_proba_shape_and_range(self, fitted):
        model, x_test, _ = fitted
        probs = model.predict_proba(x_test)
        assert probs.shape == (x_test.shape[0], 6)
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_beats_chance(self, fitted):
        model, x_test, test_sets = fitted
        predictions = model.predict(x_test)
        metrics = multilabel_metrics(test_sets, predictions, list(DIMENSIONS))
        assert metrics.micro_f1 > 0.3
        assert metrics.hamming_loss < 0.5

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            OneVsRestClassifier([])
        with pytest.raises(ValueError):
            OneVsRestClassifier(["a"], threshold=0.0)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            OneVsRestClassifier(["a"]).predict(np.zeros((1, 2)))

    def test_constant_label_handled(self):
        x = np.random.default_rng(0).normal(size=(10, 3))
        sets = [{"always"} for _ in range(10)]
        model = OneVsRestClassifier(["always", "never"]).fit(x, sets)
        predictions = model.predict(x)
        assert all(p == {"always"} for p in predictions)


class TestMultiLabelMetrics:
    def test_perfect(self):
        gold = [{"a"}, {"a", "b"}]
        metrics = multilabel_metrics(gold, gold, ["a", "b"])
        assert metrics.subset_accuracy == 1.0
        assert metrics.hamming_loss == 0.0
        assert metrics.micro_f1 == 1.0

    def test_partial(self):
        gold = [{"a", "b"}]
        predicted = [{"a"}]
        metrics = multilabel_metrics(gold, predicted, ["a", "b"])
        assert metrics.subset_accuracy == 0.0
        assert metrics.hamming_loss == pytest.approx(0.5)
        assert metrics.micro_f1 == pytest.approx(2 / 3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            multilabel_metrics([{"a"}], [], ["a"])


class TestSpanPredictor:
    def test_lexical_only_picks_span_sentence(self, small_dataset):
        predictor = SpanPredictor()
        hits = total = 0
        for inst in list(small_dataset)[:60]:
            if inst.metadata.get("noisy"):
                continue
            prediction = predictor.predict(inst.text, inst.label)
            total += 1
            if (
                inst.span_text in prediction.span
                or prediction.span in inst.span_text
            ):
                hits += 1
        assert total > 0
        assert hits / total > 0.6

    def test_rouge_evaluation(self, small_dataset):
        predictor = SpanPredictor()
        instances = list(small_dataset)[:30]
        predictions = [
            predictor.predict(inst.text, inst.label) for inst in instances
        ]
        evaluation = evaluate_span_predictions(
            predictions, [inst.span_text for inst in instances]
        )
        assert evaluation.rouge1_f1 > 0.5
        assert 0 <= evaluation.exact_sentence_rate <= 1

    def test_occlusion_mixes_in(self, small_dataset):
        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        from repro.core.pipeline import WellnessClassifier

        clf = WellnessClassifier("LR").fit(split.train)
        predictor = SpanPredictor(clf.predict_proba, occlusion_weight=1.0)
        multi_sentence = next(
            inst
            for inst in split.test
            if inst.post.sentence_count > 1
        )
        prediction = predictor.predict(multi_sentence.text, multi_sentence.label)
        assert len(prediction.sentence_scores) == multi_sentence.post.sentence_count

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            SpanPredictor().predict("", WellnessDimension.SOCIAL)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            SpanPredictor(occlusion_weight=-1)


class TestInteractions:
    def test_graph_structure(self, small_dataset):
        graph = build_interaction_graph(small_dataset)
        assert set(graph.nodes()) == {d.code for d in DIMENSIONS}
        assert all(d["weight"] >= 1 for _, _, d in graph.edges(data=True))

    def test_report_on_full_corpus(self, dataset):
        report = analyze_interactions(dataset)
        assert report.n_cooccurring_posts > 0
        assert report.strongest_pairs
        # §IV: the Emotional dimension sits at the centre of the overlap
        # structure (its vocabulary bleeds into everything).
        assert report.most_central == "EA"
        # EA/SA is among the strongest interaction pairs.
        top_pair_sets = [{a, b} for a, b, _ in report.strongest_pairs[:3]]
        assert {"EA", "SA"} in top_pair_sets

    def test_centrality_sums_to_one(self, small_dataset):
        report = analyze_interactions(small_dataset)
        assert sum(report.centrality.values()) == pytest.approx(1.0)

    def test_pair_weight_symmetric_lookup(self, dataset):
        report = analyze_interactions(dataset)
        weight = report.pair_weight(
            WellnessDimension.EMOTIONAL, WellnessDimension.SOCIAL
        )
        reverse = report.pair_weight(
            WellnessDimension.SOCIAL, WellnessDimension.EMOTIONAL
        )
        assert weight == reverse > 0

    def test_empty_corpus(self):
        report = analyze_interactions([])
        assert report.n_cooccurring_posts == 0
        assert report.reciprocity == 0.0
