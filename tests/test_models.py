"""Tests for the transformer baselines: configs, classifier, pretraining, trainer."""

import numpy as np
import pytest

from repro.core.labels import DIMENSIONS
from repro.models.classifier import TransformerClassifier
from repro.models.config import MODEL_CONFIGS, ModelConfig, scaled_for_tests
from repro.models.pretrain import build_pretraining_corpus, mask_tokens, pretrain
from repro.models.trainer import Trainer
from repro.text.vocab import Vocabulary


@pytest.fixture(scope="module")
def vocab(small_dataset):
    return Vocabulary.build(small_dataset.texts, max_size=800)


def _tiny(name: str) -> ModelConfig:
    return scaled_for_tests(MODEL_CONFIGS[name])


class TestConfigs:
    def test_all_six_baselines_configured(self):
        assert set(MODEL_CONFIGS) == {
            "BERT", "DistilBERT", "MentalBERT", "Flan-T5", "XLNet", "GPT-2.0",
        }

    def test_paper_hyperparameters(self):
        # §III-A: BERT family lr 1e-3 batch 16; Flan-T5 3e-4 batch 8;
        # XLNet 1e-3 batch 8; GPT-2 3e-4 batch 4; all 10 epochs.
        assert MODEL_CONFIGS["BERT"].learning_rate == 1e-3
        assert MODEL_CONFIGS["BERT"].batch_size == 16
        assert MODEL_CONFIGS["Flan-T5"].learning_rate == 3e-4
        assert MODEL_CONFIGS["Flan-T5"].batch_size == 8
        assert MODEL_CONFIGS["XLNet"].batch_size == 8
        assert MODEL_CONFIGS["GPT-2.0"].learning_rate == 3e-4
        assert MODEL_CONFIGS["GPT-2.0"].batch_size == 4
        assert all(c.epochs == 10 for c in MODEL_CONFIGS.values())

    def test_architectural_distinctions(self):
        assert MODEL_CONFIGS["DistilBERT"].n_layers < MODEL_CONFIGS["BERT"].n_layers
        assert MODEL_CONFIGS["MentalBERT"].pretrain_domain == "mental_health"
        assert MODEL_CONFIGS["BERT"].pretrain_domain == "mixed"
        assert MODEL_CONFIGS["Flan-T5"].encoder_decoder
        assert MODEL_CONFIGS["XLNet"].relative_positions
        assert not MODEL_CONFIGS["XLNet"].use_absolute_positions
        assert MODEL_CONFIGS["GPT-2.0"].causal
        assert MODEL_CONFIGS["GPT-2.0"].pooling == "last"

    def test_mentalbert_pretrains_longer(self):
        assert (
            MODEL_CONFIGS["MentalBERT"].pretrain_steps
            > MODEL_CONFIGS["BERT"].pretrain_steps
        )

    def test_invalid_pooling(self):
        with pytest.raises(ValueError):
            ModelConfig(name="x", pooling="bogus")

    def test_invalid_objective(self):
        with pytest.raises(ValueError):
            ModelConfig(name="x", pretrain_objective="bogus")


class TestClassifier:
    @pytest.mark.parametrize("name", list(MODEL_CONFIGS))
    def test_forward_all_architectures(self, name, vocab):
        model = TransformerClassifier(_tiny(name), vocab, len(DIMENSIONS))
        token_ids = model.encode_batch(["i feel alone", "my job drains me today"])
        logits = model(token_ids)
        assert logits.shape == (2, 6)

    def test_encode_batch_pads(self, vocab):
        model = TransformerClassifier(_tiny("BERT"), vocab, 6)
        batch = model.encode_batch(["one", "one two three four"])
        assert batch.shape[0] == 2
        assert (batch[0] == vocab.pad_id).sum() > 0

    def test_cls_token_prepended(self, vocab):
        model = TransformerClassifier(_tiny("BERT"), vocab, 6)
        batch = model.encode_batch(["hello"])
        assert batch[0, 0] == vocab.cls_id

    def test_instruction_prefix_prepended(self, vocab):
        model = TransformerClassifier(_tiny("Flan-T5"), vocab, 6)
        batch = model.encode_batch(["hello"])
        prefix = MODEL_CONFIGS["Flan-T5"].instruction_prefix.split()
        assert batch[0, : len(prefix)].tolist() == [vocab[t] for t in prefix]

    def test_predict_returns_ids(self, vocab):
        model = TransformerClassifier(_tiny("BERT"), vocab, 6)
        ids = model.predict(["i feel alone", "my job is gone"])
        assert ids.shape == (2,)
        assert all(0 <= i < 6 for i in ids)

    def test_predict_proba_normalised(self, vocab):
        model = TransformerClassifier(_tiny("GPT-2.0"), vocab, 6)
        probs = model.predict_proba(["i cannot sleep at night"])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)

    def test_vocab_without_specials_rejected(self):
        bare = Vocabulary(["a", "b"], specials=False)
        with pytest.raises(ValueError):
            TransformerClassifier(_tiny("BERT"), bare, 6)

    def test_lm_logits_shape(self, vocab):
        model = TransformerClassifier(_tiny("BERT"), vocab, 6)
        token_ids = model.encode_batch(["i feel alone tonight"])
        logits = model.lm_logits(token_ids)
        assert logits.shape == (1, token_ids.shape[1], len(vocab))


class TestPretraining:
    def test_corpus_domains_differ(self):
        domain = build_pretraining_corpus("mental_health", size=60, seed=5)
        mixed = build_pretraining_corpus("mixed", size=60, seed=5)
        assert len(domain) == len(mixed) > 0
        # The mixed corpus contains general-domain text absent from the
        # domain corpus.
        assert any("forum" in t.lower() or "weather" in t.lower() for t in mixed)

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            build_pretraining_corpus("bogus")

    def test_mask_tokens_contract(self):
        rng = np.random.default_rng(0)
        ids = np.arange(5, 45).reshape(4, 10)
        corrupted, targets = mask_tokens(
            ids, mask_id=4, pad_id=0, vocab_size=50, rng=rng, mask_prob=0.5
        )
        selected = targets != -100
        assert selected.any()
        # Unselected positions are untouched.
        np.testing.assert_array_equal(corrupted[~selected], ids[~selected])
        # Targets hold the original token at selected positions.
        np.testing.assert_array_equal(targets[selected], ids[selected])

    def test_mask_tokens_never_selects_pads(self):
        rng = np.random.default_rng(1)
        ids = np.zeros((2, 6), dtype=np.int64)
        _, targets = mask_tokens(
            ids, mask_id=4, pad_id=0, vocab_size=10, rng=rng, mask_prob=0.9
        )
        assert (targets == -100).all()

    def test_mlm_pretraining_reduces_loss(self, vocab, small_dataset):
        model = TransformerClassifier(_tiny("BERT"), vocab, 6)
        losses = pretrain(
            model, small_dataset.texts, steps=30, objective="mlm", seed=0
        )
        assert len(losses) == 30
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_clm_pretraining_reduces_loss(self, vocab, small_dataset):
        model = TransformerClassifier(_tiny("GPT-2.0"), vocab, 6)
        losses = pretrain(
            model, small_dataset.texts, steps=30, objective="clm", seed=0
        )
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_invalid_objective_rejected(self, vocab):
        model = TransformerClassifier(_tiny("BERT"), vocab, 6)
        with pytest.raises(ValueError):
            pretrain(model, ["text"], steps=1, objective="bogus")

    def test_empty_corpus_rejected(self, vocab):
        model = TransformerClassifier(_tiny("BERT"), vocab, 6)
        with pytest.raises(ValueError):
            pretrain(model, [], steps=1, objective="mlm")


class TestTrainer:
    def test_fit_improves_over_chance(self, vocab, small_dataset):
        from dataclasses import replace

        config = replace(_tiny("BERT"), epochs=6)
        trainer = Trainer(config, vocab)
        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        trainer.fit(split.train.texts, split.train.labels)
        accuracy = trainer.score(split.test.texts, split.test.labels)
        assert accuracy > 1.0 / 6 + 0.1  # clearly above chance

    def test_val_tracking(self, vocab, small_dataset):
        from dataclasses import replace

        config = replace(_tiny("BERT"), epochs=2)
        trainer = Trainer(config, vocab)
        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        result = trainer.fit(
            split.train.texts,
            split.train.labels,
            val_texts=split.validation.texts,
            val_labels=split.validation.labels,
        )
        assert len(result.val_accuracies) == 2
        assert result.train_losses

    def test_empty_training_rejected(self, vocab):
        trainer = Trainer(_tiny("BERT"), vocab)
        with pytest.raises(ValueError):
            trainer.fit([], [])

    def test_length_mismatch_rejected(self, vocab):
        trainer = Trainer(_tiny("BERT"), vocab)
        with pytest.raises(ValueError):
            trainer.fit(["a"], [])

    def test_predict_returns_dimensions(self, vocab, small_dataset):
        trainer = Trainer(_tiny("BERT"), vocab)
        trainer.fit(small_dataset.texts[:40], small_dataset.labels[:40])
        predictions = trainer.predict(small_dataset.texts[:5])
        assert all(p in DIMENSIONS for p in predictions)

    def test_pretraining_cache_reused(self, vocab, small_dataset):
        from dataclasses import replace

        config = replace(
            _tiny("BERT"), pretrain_objective="mlm", pretrain_steps=5
        )
        first = Trainer(config, vocab, use_pretraining_cache=True)
        first.maybe_pretrain()
        second = Trainer(config, vocab, use_pretraining_cache=True)
        second.maybe_pretrain()
        state_a = first.model.state_dict()
        state_b = second.model.state_dict()
        for key in state_a:
            np.testing.assert_array_equal(state_a[key], state_b[key])

    def test_pretraining_disk_cache_roundtrip(
        self, vocab, monkeypatch, tmp_path
    ):
        from dataclasses import replace

        import repro.models.trainer as trainer_module

        config = replace(
            _tiny("BERT"), pretrain_objective="mlm", pretrain_steps=5
        )
        monkeypatch.setenv("REPRO_PRETRAIN_CACHE", str(tmp_path))
        monkeypatch.setattr(trainer_module, "_PRETRAINED_CACHE", {})
        first = Trainer(config, vocab, use_pretraining_cache=True)
        first.maybe_pretrain()
        assert list(tmp_path.glob("*.npz")), "checkpoint not written to disk"

        # A fresh process is simulated by clearing the in-memory cache;
        # the second trainer must restore identical weights from disk.
        monkeypatch.setattr(trainer_module, "_PRETRAINED_CACHE", {})
        second = Trainer(config, vocab, use_pretraining_cache=True)
        second.maybe_pretrain()
        assert not second.result.pretrain_losses  # no re-pretraining
        state_a = first.model.state_dict()
        state_b = second.model.state_dict()
        for key in state_a:
            np.testing.assert_array_equal(state_a[key], state_b[key])

    def test_pretraining_disk_cache_disabled(self, vocab, monkeypatch, tmp_path):
        from dataclasses import replace

        import repro.models.trainer as trainer_module

        config = replace(
            _tiny("BERT"), pretrain_objective="mlm", pretrain_steps=5
        )
        monkeypatch.setenv("REPRO_PRETRAIN_CACHE", "0")
        monkeypatch.setattr(trainer_module, "_PRETRAINED_CACHE", {})
        trainer = Trainer(config, vocab, use_pretraining_cache=True)
        trainer.maybe_pretrain()
        assert trainer.result.pretrain_losses  # really pretrained
        assert not list(tmp_path.glob("*.npz"))


class TestModelPersistence:
    def test_classifier_weights_roundtrip(self, vocab, small_dataset, tmp_path):
        import numpy as np

        from repro.nn.serialization import load_weights, save_weights

        trainer = Trainer(_tiny("BERT"), vocab)
        trainer.fit(small_dataset.texts[:60], small_dataset.labels[:60])
        path = tmp_path / "bert.npz"
        save_weights(trainer.model, path)

        clone = TransformerClassifier(_tiny("BERT"), vocab, 6)
        load_weights(clone, path)
        texts = small_dataset.texts[:8]
        np.testing.assert_array_equal(
            trainer.model.predict(texts), clone.predict(texts)
        )

    def test_wrong_config_rejected_on_load(self, vocab, tmp_path):
        from repro.nn.serialization import load_weights, save_weights

        source = TransformerClassifier(_tiny("BERT"), vocab, 6)
        path = tmp_path / "bert.npz"
        save_weights(source, path)
        # Flan-T5's encoder-decoder layout has extra parameters, so the
        # state dicts cannot match.  (BERT vs GPT-2 share a parameter
        # layout — causality is a mask, not a weight.)
        other = TransformerClassifier(_tiny("Flan-T5"), vocab, 6)
        with pytest.raises(ValueError):
            load_weights(other, path)
