"""HX005 must-pass: conventional family/sample/label names."""


def render(lines, requests, latency):
    def family(name, kind, help_text, samples):
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    def _sample(name, value, labels=None):
        return f"{name} {value}"

    family(
        "holistix_requests_total",
        "counter",
        "Requests served.",
        [_sample("holistix_requests_total", requests, {"endpoint": "/v1/predict"})],
    )
    family(
        "holistix_latency_ms",
        "summary",
        "Latency quantiles.",
        [
            _sample("holistix_latency_ms", latency, {"quantile": "0.5"}),
            _sample("holistix_latency_ms_sum", latency),
            _sample("holistix_latency_ms_count", requests),
        ],
    )
