"""HX001 must-flag: guarded field written without the lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def increment(self):
        with self._lock:
            self._count += 1

    def reset(self):
        self._count = 0  # HX001: guarded elsewhere, unguarded here
