"""HX004 must-pass: every Thread states who owns its shutdown."""

import threading


def start_workers(target):
    supervised = threading.Thread(target=target, daemon=True)
    joined = threading.Thread(target=target, daemon=False)
    supervised.start()
    joined.start()
    joined.join()
    return supervised
