"""HX006 must-flag: chaos seams called without a None guard."""


class Server:
    def __init__(self):
        self.chaos = None

    def serve_batch(self, worker, texts):
        self.chaos.before_batch(worker)  # HX006: no guard
        return list(texts)

    def aliased(self, worker):
        chaos = self.chaos
        chaos.before_batch(worker)  # HX006: alias used unguarded
