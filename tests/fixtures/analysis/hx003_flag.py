# holistix-lint: seeded-module
"""HX003 must-flag: wall-clock and global randomness in seeded code."""

import os
import random
import time


def make_trace(n):
    started = time.time()  # HX003: wall clock
    jitter = [random.random() for _ in range(n)]  # HX003: global RNG
    token = os.urandom(8)  # HX003: OS entropy
    return started, jitter, token
