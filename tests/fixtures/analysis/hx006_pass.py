"""HX006 must-pass: every recognised guard shape."""


class Server:
    def __init__(self):
        self.chaos = None

    def enclosing_if(self, worker):
        chaos = self.chaos
        if chaos is not None:
            chaos.before_batch(worker)

    def early_exit(self, worker):
        chaos = self.chaos
        if chaos is None:
            return
        chaos.before_batch(worker)

    def conditional_expr(self):
        injector = self.chaos
        return None if injector is None else injector.http_response_fault()

    def short_circuit(self, worker):
        chaos = self.chaos
        return chaos is not None and chaos.should_fail(worker)

    def direct_guard(self, worker):
        if self.chaos is not None:
            self.chaos.before_batch(worker)
