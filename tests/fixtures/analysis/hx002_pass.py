"""HX002 must-pass: copy under the lock, block outside it."""

import threading
import time


class Worker:
    def __init__(self, conn):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._thread = threading.Thread(target=self.run, daemon=True)
        self.conn = conn
        self.parts = ["a", "b"]

    def slow_stop(self):
        with self._lock:
            thread = self._thread
            self._thread = None
            label = ", ".join(self.parts)  # str.join is not thread join
        time.sleep(0.1)
        thread.join()
        return label

    def wait_for_work(self):
        with self._cond:
            # Condition.wait releases the lock while sleeping — allowed.
            self._cond.wait(timeout=1.0)

    def round_trip(self, payload):
        with self._lock:
            conn = self.conn
        conn.send(payload)
        return conn.recv()
