"""HX001 must-pass: every write under the lock, or in an exempt method."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._slot_locks = [threading.Lock() for _ in range(4)]
        self._slots = [0] * 4

    def increment(self):
        with self._lock:
            self._count += 1

    def bump_slot(self, i):
        with self._slot_locks[i]:
            self._slots[i] += 1

    def reset(self):
        with self._lock:
            self._reset_locked()

    def _reset_locked(self):
        # Contract: caller holds self._lock (enforced by require_held).
        self._count = 0
