# holistix-lint: seeded-module
"""HX003 must-pass: injected seed and monotonic durations only."""

import random
import time


def make_trace(n, seed):
    rng = random.Random(seed)
    started = time.monotonic()
    jitter = [rng.random() for _ in range(n)]
    elapsed = time.perf_counter() - started
    return elapsed, jitter
