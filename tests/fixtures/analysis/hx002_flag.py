"""HX002 must-flag: blocking calls while holding a lock."""

import threading
import time


class Worker:
    def __init__(self, conn):
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self.run, daemon=True)
        self.conn = conn

    def slow_stop(self):
        with self._lock:
            time.sleep(0.1)  # HX002: sleeping under the lock
            self._thread.join()  # HX002: joining under the lock

    def round_trip(self, payload):
        with self._lock:
            self.conn.send(payload)  # HX002
            return self.conn.recv()  # HX002
