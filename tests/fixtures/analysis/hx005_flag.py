"""HX005 must-flag: metric families off the naming conventions."""


def render(lines, requests, latency):
    def family(name, kind, help_text, samples):
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    def _sample(name, value, labels=None):
        return f"{name} {value}"

    family(
        "requests_total",  # HX005: missing holistix_ prefix
        "counter",
        "Requests served.",
        [_sample("requests_total", requests)],
    )
    family(
        "holistix_http_requests",  # HX005: counter without _total
        "counter",
        "HTTP requests.",
        [_sample("holistix_http_requests", requests)],
    )
    family(
        "holistix_latency_ms_total",  # HX005: gauge ending in _total
        "gauge",
        "Latency gauge.",
        [_sample("holistix_latency_ms_total", latency)],
    )
    family(
        "holistix_queue_depth",
        "gauge",
        "Queue depth by worker.",
        [_sample("holistix_queue_depth", 0, {"Worker-ID": "0"})],  # HX005: label case
    )
