"""HX004 must-flag: Thread constructed without a daemon decision."""

import threading
from threading import Thread


def start_workers(target):
    worker = threading.Thread(target=target)  # HX004
    helper = Thread(target=target, name="helper")  # HX004
    worker.start()
    helper.start()
    return worker, helper
