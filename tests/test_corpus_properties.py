"""Property-based tests on the corpus generator's invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dataset import HolistixDataset
from repro.core.labels import DIMENSIONS
from repro.corpus.generator import GeneratorConfig, assemble, draft_post
from repro.text.tokenize import count_sentences, count_words

_dim = st.sampled_from(list(DIMENSIONS))


class TestDraftProperties:
    @given(dim=_dim, seed=st.integers(0, 2000))
    @settings(max_examples=120, deadline=None)
    def test_span_always_recoverable(self, dim, seed):
        draft = draft_post(dim, np.random.default_rng(seed))
        instance = assemble(draft, "prop")
        assert (
            instance.post.text[instance.span.start : instance.span.end]
            == instance.span.text
        )
        assert instance.span.text  # never empty

    @given(dim=_dim, seed=st.integers(0, 2000))
    @settings(max_examples=80, deadline=None)
    def test_limits_respected(self, dim, seed):
        draft = draft_post(dim, np.random.default_rng(seed))
        assert draft.sentence_count() <= 9
        # max_words may be exceeded only when no filler is droppable,
        # which the generator prevents for the default limits.
        assert draft.word_count() <= 115

    @given(dim=_dim, seed=st.integers(0, 2000))
    @settings(max_examples=80, deadline=None)
    def test_word_count_consistent_with_text(self, dim, seed):
        draft = draft_post(dim, np.random.default_rng(seed))
        assert draft.word_count() == count_words(draft.text())

    @given(dim=_dim, seed=st.integers(0, 2000))
    @settings(max_examples=60, deadline=None)
    def test_sentence_count_consistent_with_tokenizer(self, dim, seed):
        draft = draft_post(dim, np.random.default_rng(seed))
        assert draft.sentence_count() == count_sentences(draft.text())

    @given(dim=_dim, seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_label_matches_request_without_noise(self, dim, seed):
        draft = draft_post(dim, np.random.default_rng(seed))
        assert draft.label is dim

    @given(dim=_dim, seed=st.integers(0, 800))
    @settings(max_examples=50, deadline=None)
    def test_balanced_posts_have_distinct_partner(self, dim, seed):
        draft = draft_post(dim, np.random.default_rng(seed))
        if draft.post_type == "balanced":
            assert len(draft.secondary_dims) == 1
            assert draft.secondary_dims[0] is not dim
        elif draft.post_type in ("clear", "generic"):
            assert not draft.secondary_dims


class TestBuildProperties:
    @given(
        counts=st.dictionaries(
            _dim, st.integers(3, 12), min_size=2, max_size=6
        ),
        seed=st.integers(0, 50),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_arbitrary_class_counts_respected(self, counts, seed):
        from collections import Counter

        config = GeneratorConfig(
            class_counts=counts,
            seed=seed,
            target_total_words=None,
            target_total_sentences=None,
            label_noise=0.0,
        )
        dataset = HolistixDataset.build(config)
        measured = Counter(i.label for i in dataset)
        assert dict(measured) == {d: c for d, c in counts.items() if c > 0}

    @given(seed=st.integers(0, 30))
    @settings(max_examples=6, deadline=None)
    def test_uniqueness_for_any_seed(self, seed):
        config = GeneratorConfig(
            class_counts={d: 15 for d in DIMENSIONS},
            seed=seed,
            target_total_words=None,
            target_total_sentences=None,
        )
        dataset = HolistixDataset.build(config)
        assert len({i.text for i in dataset}) == len(dataset)
