"""Property-based tests on the corpus generator's invariants."""

import itertools
import tracemalloc
from collections import Counter

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dataset import HolistixDataset
from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.corpus.factory import CorpusFactory, PersonaSpec
from repro.corpus.generator import GeneratorConfig, assemble, draft_post
from repro.text.tokenize import count_sentences, count_words

_dim = st.sampled_from(list(DIMENSIONS))


class TestDraftProperties:
    @given(dim=_dim, seed=st.integers(0, 2000))
    @settings(max_examples=120, deadline=None)
    def test_span_always_recoverable(self, dim, seed):
        draft = draft_post(dim, np.random.default_rng(seed))
        instance = assemble(draft, "prop")
        assert (
            instance.post.text[instance.span.start : instance.span.end]
            == instance.span.text
        )
        assert instance.span.text  # never empty

    @given(dim=_dim, seed=st.integers(0, 2000))
    @settings(max_examples=80, deadline=None)
    def test_limits_respected(self, dim, seed):
        draft = draft_post(dim, np.random.default_rng(seed))
        assert draft.sentence_count() <= 9
        # max_words may be exceeded only when no filler is droppable,
        # which the generator prevents for the default limits.
        assert draft.word_count() <= 115

    @given(dim=_dim, seed=st.integers(0, 2000))
    @settings(max_examples=80, deadline=None)
    def test_word_count_consistent_with_text(self, dim, seed):
        draft = draft_post(dim, np.random.default_rng(seed))
        assert draft.word_count() == count_words(draft.text())

    @given(dim=_dim, seed=st.integers(0, 2000))
    @settings(max_examples=60, deadline=None)
    def test_sentence_count_consistent_with_tokenizer(self, dim, seed):
        draft = draft_post(dim, np.random.default_rng(seed))
        assert draft.sentence_count() == count_sentences(draft.text())

    @given(dim=_dim, seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_label_matches_request_without_noise(self, dim, seed):
        draft = draft_post(dim, np.random.default_rng(seed))
        assert draft.label is dim

    @given(dim=_dim, seed=st.integers(0, 800))
    @settings(max_examples=50, deadline=None)
    def test_balanced_posts_have_distinct_partner(self, dim, seed):
        draft = draft_post(dim, np.random.default_rng(seed))
        if draft.post_type == "balanced":
            assert len(draft.secondary_dims) == 1
            assert draft.secondary_dims[0] is not dim
        elif draft.post_type in ("clear", "generic"):
            assert not draft.secondary_dims


class TestBuildProperties:
    @given(
        counts=st.dictionaries(
            _dim, st.integers(3, 12), min_size=2, max_size=6
        ),
        seed=st.integers(0, 50),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_arbitrary_class_counts_respected(self, counts, seed):
        from collections import Counter

        config = GeneratorConfig(
            class_counts=counts,
            seed=seed,
            target_total_words=None,
            target_total_sentences=None,
            label_noise=0.0,
        )
        dataset = HolistixDataset.build(config)
        measured = Counter(i.label for i in dataset)
        assert dict(measured) == {d: c for d, c in counts.items() if c > 0}

    @given(seed=st.integers(0, 30))
    @settings(max_examples=6, deadline=None)
    def test_uniqueness_for_any_seed(self, seed):
        config = GeneratorConfig(
            class_counts={d: 15 for d in DIMENSIONS},
            seed=seed,
            target_total_words=None,
            target_total_sentences=None,
        )
        dataset = HolistixDataset.build(config)
        assert len({i.text for i in dataset}) == len(dataset)


class TestFactoryProperties:
    """The streaming corpus factory's contract (``repro.corpus.factory``).

    Determinism, prefix stability, cross-seed id disjointness, label
    marginals matching the persona bank, and the constant-memory claim
    at a million documents — the properties the load-generation
    benchmarks lean on.
    """

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_same_seed_is_byte_identical(self, seed):
        factory = CorpusFactory()
        assert factory.sample(seed, 150) == factory.sample(seed, 150)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_short_stream_is_prefix_of_long_stream(self, seed):
        factory = CorpusFactory()
        short = factory.sample(seed, 25)
        long_prefix = list(
            itertools.islice(factory.iter_documents(seed, 500), 25)
        )
        assert short == long_prefix

    @given(
        seeds=st.lists(
            st.integers(0, 10_000), min_size=2, max_size=3, unique=True
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_disjoint_seeds_yield_disjoint_ids(self, seeds):
        factory = CorpusFactory()
        id_sets = [
            {doc.doc_id for doc in factory.iter_documents(seed, 100)}
            for seed in seeds
        ]
        for a, b in itertools.combinations(id_sets, 2):
            assert not (a & b)

    def test_label_distribution_matches_persona_bank(self):
        factory = CorpusFactory()
        n = 30_000
        counts = Counter(doc.label for doc in factory.iter_documents(11, n))
        expected = factory.expected_label_distribution()
        assert abs(sum(expected.values()) - 1.0) < 1e-9
        for dim in DIMENSIONS:
            measured = counts[dim] / n
            # 5-sigma band for a binomial at n=30k is ~0.012; 0.015
            # keeps the test deterministic-in-practice without masking
            # a broken persona/label CDF.
            assert abs(measured - expected[dim]) < 0.015, (
                f"{dim}: measured {measured:.4f}, expected {expected[dim]:.4f}"
            )

    def test_documents_are_well_formed(self):
        factory = CorpusFactory()
        for doc in factory.iter_documents(77, 500):
            assert isinstance(doc.label, WellnessDimension)
            assert doc.text
            assert "{a}" not in doc.text and "{b}" not in doc.text
            assert doc.n_sentences >= 1
            assert doc.n_words == doc.text.count(" ") + 1
            assert doc.persona in {p.name for p in factory.personas}

    def test_million_documents_bounded_memory(self):
        """Stream 1M documents; traced memory must stay flat.

        Tracing every allocation across the full run is ~8x slower than
        generation itself, so tracemalloc samples two 50k-document
        windows — the head and the tail of the same 1M stream.  If the
        generator retained anything per document, the tail window
        (950k documents in) would show it.
        """
        factory = CorpusFactory()
        n, window = 1_000_000, 50_000
        stream = factory.iter_documents(23, n)

        def traced_peak(count: int) -> int:
            tracemalloc.start()
            base = tracemalloc.get_traced_memory()[0]
            for _ in range(count):
                next(stream)
            peak = tracemalloc.get_traced_memory()[1] - base
            tracemalloc.stop()
            return peak

        head_peak = traced_peak(window)
        # Fast-forward the middle untraced (still generated, not kept).
        for _ in itertools.islice(stream, n - 2 * window):
            pass
        tail_peak = traced_peak(window)
        assert next(stream, None) is None, "stream must be exhausted"
        bound = 4 * 1024 * 1024
        assert head_peak < bound, f"head window peak {head_peak} bytes"
        assert tail_peak < bound, f"tail window peak {tail_peak} bytes"

    def test_persona_and_factory_validation(self):
        import pytest

        weights = {WellnessDimension.SOCIAL: 1.0}
        with pytest.raises(ValueError):
            PersonaSpec("", label_weights=weights)
        with pytest.raises(ValueError):
            PersonaSpec("p", label_weights={})
        with pytest.raises(ValueError):
            PersonaSpec("p", label_weights=weights, sentence_range=(3, 2))
        with pytest.raises(ValueError):
            PersonaSpec("p", label_weights=weights, vocabulary_scale=0.0)
        persona = PersonaSpec("p", label_weights=weights)
        with pytest.raises(ValueError):
            CorpusFactory([])
        with pytest.raises(ValueError):
            CorpusFactory([persona, persona])
        with pytest.raises(ValueError):
            CorpusFactory([persona], persona_weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            CorpusFactory([persona]).sample(0, 10, every=0)
        with pytest.raises(ValueError):
            list(CorpusFactory([persona]).iter_documents(0, -1))
