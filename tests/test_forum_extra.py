"""Additional forum, preprocessing and stopword tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.corpus.forum import JunkProfile, RawForumPost, SimulatedForum
from repro.corpus.preprocess import is_on_topic, preprocess
from repro.corpus.scraper import scrape_board
from repro.text.stopwords import FUNCTION_WORDS, STOPWORDS, is_stopword
from repro.text.tokenize import count_words


class TestJunkProfileCustomisation:
    def test_custom_profile_changes_pool_size(self, small_dataset):
        profile = JunkProfile(duplicates=5, empty=5, overlong=5, offtopic=5)
        forum = SimulatedForum.populate(
            list(small_dataset), junk=profile, seed=3
        )
        assert len(forum) == len(small_dataset) + 20

    def test_custom_profile_funnel(self, small_dataset):
        profile = JunkProfile(duplicates=7, empty=3, overlong=4, offtopic=6)
        forum = SimulatedForum.populate(
            list(small_dataset), junk=profile, seed=4
        )
        clean, report = preprocess([p for p in forum.posts])
        assert report.removed_empty == 3
        assert report.removed_duplicates == 7
        assert report.removed_overlong == 4
        assert report.removed_offtopic == 6
        assert len(clean) == len(small_dataset)

    def test_zero_junk(self, small_dataset):
        profile = JunkProfile(duplicates=0, empty=0, overlong=0, offtopic=0)
        forum = SimulatedForum.populate(
            list(small_dataset), junk=profile, seed=5
        )
        clean, report = preprocess(list(forum.posts))
        assert report.raw == len(small_dataset)
        assert len(clean) == len(small_dataset)

    def test_forum_deterministic(self, small_dataset):
        a = SimulatedForum.populate(list(small_dataset), seed=9)
        b = SimulatedForum.populate(list(small_dataset), seed=9)
        assert [p.text for p in a.posts] == [p.text for p in b.posts]

    def test_overlong_junk_exceeds_limit(self, small_dataset):
        forum = SimulatedForum.populate(list(small_dataset), seed=6)
        overlong = [p for p in forum.posts if p.post_id.startswith("junk-long")]
        assert overlong
        assert all(count_words(p.text) > 115 for p in overlong)

    def test_offtopic_junk_has_no_distress_words(self, small_dataset):
        forum = SimulatedForum.populate(list(small_dataset), seed=6)
        offtopic = [
            p for p in forum.posts if p.post_id.startswith("junk-offtopic")
        ]
        assert offtopic
        assert not any(is_on_topic(p.text) for p in offtopic)


class TestScraperEdgeCases:
    def test_empty_page(self):
        assert scrape_board("<html><body></body></html>") == []

    def test_body_outside_article_rejected(self):
        page = '<div class="post-body">orphan</div>'
        with pytest.raises(ValueError):
            scrape_board(page)

    def test_multiple_boards_in_one_page(self):
        page = (
            '<section class="board" data-category="A">'
            '<article class="forum-post" data-post-id="1">'
            '<div class="post-body">first</div></article></section>'
            '<section class="board" data-category="B">'
            '<article class="forum-post" data-post-id="2">'
            '<div class="post-body">second</div></article></section>'
        )
        posts = scrape_board(page)
        assert [(p.post_id, p.category) for p in posts] == [("1", "A"), ("2", "B")]

    def test_charref_handling(self):
        page = (
            '<section class="board" data-category="A">'
            '<article class="forum-post" data-post-id="1">'
            '<div class="post-body">a&#39;s post</div></article></section>'
        )
        assert scrape_board(page)[0].text == "a's post"


class TestPreprocessProperties:
    @given(
        st.lists(
            st.sampled_from(
                [
                    "",
                    "   ",
                    "my anxiety is bad tonight",
                    "my anxiety is bad tonight",
                    "lovely weather this weekend",
                    "i cannot sleep and the depression is back",
                ]
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_funnel_monotone_and_consistent(self, texts):
        posts = [RawForumPost(f"p{i}", t, "Anxiety") for i, t in enumerate(texts)]
        clean, report = preprocess(posts)
        counts = [c for _, c in report.stages()]
        assert counts == sorted(counts, reverse=True)
        assert len(clean) == report.after_topic_filter
        # Survivors are non-empty, unique, on-topic.
        survivors = [p.text for p in clean]
        assert len(set(survivors)) == len(survivors)
        assert all(t.strip() for t in survivors)
        assert all(is_on_topic(t) for t in survivors)


class TestStopwords:
    def test_full_list_contains_glue(self):
        for word in ("the", "and", "of", "is"):
            assert word in STOPWORDS

    def test_function_words_keep_me(self):
        # Table III keeps "me" as a Social Aspect signal word.
        assert "me" not in FUNCTION_WORDS
        assert "me" in STOPWORDS

    def test_is_stopword_switch(self):
        assert is_stopword("the")
        assert is_stopword("THE")
        assert is_stopword("me", full=True)
        assert not is_stopword("me", full=False)
        assert not is_stopword("anxiety")
