"""Schema validation for every committed ``BENCH_*.json`` record.

The benchmark harness persists one record per scenario and ``--check``
compares fresh runs against them, so a harness refactor that silently
changes the record shape (dropping ``git_sha``, renaming a primary
metric, writing strings where numbers belong) would disarm the
regression gate without failing anything.  These tests pin the contract
documented in ``docs/BENCHMARKING.md``; the ``benchmark-harness-smoke``
CI job runs them against the freshly rewritten records too.
"""

from __future__ import annotations

import json
import math
from datetime import datetime
from pathlib import Path

import pytest

from benchmarks.harness import SCENARIOS

RECORDS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "records"

REQUIRED_KEYS = {
    "scenario",
    "timestamp",
    "git_sha",
    "quick",
    "cpu_count",
    "harness_wall_clock_s",
    "timings",
    "metrics",
}


def record_paths() -> list[Path]:
    return sorted(RECORDS_DIR.glob("BENCH_*.json"))


def load(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


def test_every_scenario_has_a_committed_record():
    committed = {path.stem.removeprefix("BENCH_") for path in record_paths()}
    assert committed == set(SCENARIOS), (
        "every harness scenario must commit a BENCH_<scenario>.json record "
        f"(missing: {set(SCENARIOS) - committed}, "
        f"stale: {committed - set(SCENARIOS)})"
    )


@pytest.mark.parametrize("path", record_paths(), ids=lambda p: p.stem)
class TestRecordSchema:
    def test_required_keys_present(self, path: Path) -> None:
        record = load(path)
        missing = REQUIRED_KEYS - set(record)
        assert not missing, f"{path.name} is missing {sorted(missing)}"

    def test_scenario_matches_filename(self, path: Path) -> None:
        record = load(path)
        assert record["scenario"] == path.stem.removeprefix("BENCH_")
        assert record["scenario"] in SCENARIOS

    def test_timestamp_is_iso8601(self, path: Path) -> None:
        parsed = datetime.fromisoformat(load(path)["timestamp"])
        assert parsed.tzinfo is not None, "timestamps must carry a timezone"

    def test_git_sha_and_counts(self, path: Path) -> None:
        record = load(path)
        assert isinstance(record["git_sha"], str) and record["git_sha"]
        assert isinstance(record["quick"], bool)
        assert isinstance(record["cpu_count"], int) and record["cpu_count"] >= 1
        wall = record["harness_wall_clock_s"]
        assert isinstance(wall, (int, float)) and wall > 0

    def test_timings_are_finite_numbers(self, path: Path) -> None:
        timings = load(path)["timings"]
        assert isinstance(timings, dict) and timings
        for key, value in timings.items():
            assert isinstance(key, str)
            assert isinstance(value, (int, float)) and math.isfinite(value), (
                f"{path.name}: timing {key!r} is not a finite number: {value!r}"
            )

    def test_primary_metric_present_and_finite(self, path: Path) -> None:
        record = load(path)
        _, primary_key, _ = SCENARIOS[record["scenario"]]
        metrics = record["metrics"]
        assert isinstance(metrics, dict) and metrics
        assert primary_key in metrics, (
            f"{path.name}: primary metric {primary_key!r} missing "
            f"(has {sorted(metrics)})"
        )
        value = metrics[primary_key]
        assert isinstance(value, (int, float)) and not isinstance(value, bool)
        assert math.isfinite(value) and value > 0

    def test_previous_block_shape_when_present(self, path: Path) -> None:
        previous = load(path).get("previous")
        if previous is None:
            return
        assert isinstance(previous, dict)
        assert {"git_sha", "timestamp", "metrics"} <= set(previous)


def test_serving_tail_record_is_open_loop_honest():
    """The tail-latency record must carry its methodology, not just a p99.

    ``open_loop_p99_ms`` is only meaningful at a stated offered rate
    with nothing dropped silently, and the record must demonstrate the
    coordinated-omission gap (closed-loop p99 under-reporting an
    injected stall by >= 2x) that justifies gating on the open-loop
    number in the first place.
    """
    record = load(RECORDS_DIR / "BENCH_serving_tail.json")
    metrics = record["metrics"]
    assert metrics["offered_rate_rps"] > 0
    assert metrics["achieved_rate_rps"] > 0
    assert metrics["completed"] > 0
    assert metrics["failed"] == 0 and metrics["dropped"] == 0
    assert metrics["coordinated_omission_p99_gap"] >= 2.0
    timings = record["timings"]
    for key in (
        "open_loop_p50_ms",
        "open_loop_p95_ms",
        "open_loop_p999_ms",
        "http_open_p99_ms",
        "closed_stall_p99_ms",
        "open_stall_p99_ms",
    ):
        assert timings[key] > 0, key
    # The gap in the record matches its own stall-leg percentiles.
    gap = timings["open_stall_p99_ms"] / timings["closed_stall_p99_ms"]
    assert metrics["coordinated_omission_p99_gap"] == pytest.approx(gap)


def test_serving_tail_histogram_sidecar_round_trips():
    """The full histograms ride along as a sidecar, outside BENCH_*.json.

    The record stays a small reviewable summary; the sidecar carries
    the bucket-level distributions CI uploads as an artifact.  Every
    leg must deserialise into a usable ``LatencyHistogram`` whose
    contents agree with the record.
    """
    from repro.loadgen import LatencyHistogram

    record = load(RECORDS_DIR / "BENCH_serving_tail.json")
    assert record.get("artifacts") == ["serving_tail_histogram.json"]
    sidecar = load(RECORDS_DIR / "serving_tail_histogram.json")
    assert set(sidecar["legs"]) == {
        "open_clean",
        "open_http",
        "closed_stall",
        "open_stall",
    }
    for leg, payload in sidecar["legs"].items():
        histogram = LatencyHistogram.from_dict(payload)
        assert histogram.count > 0, leg
        assert histogram.max_ms > 0, leg
    clean = LatencyHistogram.from_dict(sidecar["legs"]["open_clean"])
    assert clean.count == record["metrics"]["completed"]
    assert clean.percentile(99) == pytest.approx(
        record["metrics"]["open_loop_p99_ms"]
    )


def test_serving_chaos_record_proves_the_storm_happened():
    """The chaos record must show faults fired AND the stack absorbed them.

    An availability of 1.0 against a plan that never injected anything
    would be a vacuous gate, so the record has to carry the evidence:
    at least one supervised worker respawn, a non-zero injected-fault
    count, and a recovery tail within the gate the scenario enforces
    in-run.  Orphan count is pinned to exactly zero — it only appears
    in the record at all when the post-shutdown sweep found none.
    """
    record = load(RECORDS_DIR / "BENCH_serving_chaos.json")
    metrics = record["metrics"]
    assert 0.99 <= metrics["chaos_availability"] <= 1.0
    assert metrics["chaos_scheduled"] > 0
    assert (
        metrics["chaos_completed"] + metrics["chaos_failed"] + metrics["chaos_dropped"]
        == metrics["chaos_scheduled"]
    )
    assert metrics["worker_restarts"] >= 1
    assert metrics["injected_faults"] >= 3
    assert metrics["orphan_processes"] == 0
    assert metrics["deadline_sheds"] >= 0
    timings = record["timings"]
    for key in ("baseline_p99_ms", "chaos_p99_ms", "recovery_p99_ms"):
        assert timings[key] > 0, key
    ceiling = max(2.0 * timings["baseline_p99_ms"], 250.0)
    assert timings["recovery_p99_ms"] <= ceiling


def test_serving_chaos_sidecar_matches_the_committed_plan():
    """The sidecar's fired-fault timeline must come from the committed plan.

    The whole point of a seeded plan is that the record describes a
    reproducible storm: the committed plan file regenerates bit-for-bit
    from its recorded seed, and every fault kind the sidecar says fired
    is a kind the plan actually schedules.
    """
    from benchmarks.harness import (
        CHAOS_PLAN_PARAMS,
        CHAOS_PLAN_PATH,
        CHAOS_PLAN_SEED,
    )
    from repro.chaos import FaultPlan
    from repro.loadgen import LatencyHistogram

    plan = FaultPlan.load(CHAOS_PLAN_PATH)
    assert plan.timeline() == FaultPlan.generate(
        CHAOS_PLAN_SEED, **CHAOS_PLAN_PARAMS
    ).timeline()

    record = load(RECORDS_DIR / "BENCH_serving_chaos.json")
    assert record.get("artifacts") == ["serving_chaos_histogram.json"]
    sidecar = load(RECORDS_DIR / "serving_chaos_histogram.json")
    assert sidecar["plan"]["seed"] == CHAOS_PLAN_SEED
    assert tuple(tuple(e) for e in sidecar["plan"]["timeline"]) == tuple(
        plan.timeline()
    )
    planned_kinds = set(plan.kinds())
    assert planned_kinds <= set(sidecar["applied_counts"])
    for _, kind, _ in sidecar["fired_log"]:
        assert kind in planned_kinds
    assert set(sidecar["legs"]) == {"baseline", "chaos", "recovery"}
    for leg, payload in sidecar["legs"].items():
        histogram = LatencyHistogram.from_dict(payload)
        assert histogram.count > 0, leg


def test_serving_mp_record_carries_gil_context():
    """The multi-process record must keep its interpretation context.

    ``process_worker_scaling`` is the gated primary, but the record is
    only honest alongside the ungated secondaries that say what the GIL
    cost on this hardware (``spin_process_vs_thread`` needs spare cores
    to exceed 1.0) and what the process boundary costs when the GIL is
    not the bottleneck (``mp_vs_thread_throughput``).
    """
    record = load(RECORDS_DIR / "BENCH_serving_mp.json")
    metrics = record["metrics"]
    for key in (
        "process_worker_scaling",
        "mp_vs_thread_throughput",
        "spin_process_vs_thread",
        "spin_thread_req_per_sec",
        "spin_process_req_per_sec",
    ):
        value = metrics.get(key)
        assert isinstance(value, (int, float)) and math.isfinite(value), (
            f"BENCH_serving_mp.json: {key!r} missing or non-finite: {value!r}"
        )
        assert value > 0
