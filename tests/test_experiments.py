"""Tests for the experiment harness (E1-E8 infrastructure + cheap runs)."""

import pytest

from repro.experiments.kappa import format_kappa, run_kappa
from repro.experiments.paper_reference import (
    PAPER_KAPPA_PERCENT,
    PAPER_TABLE2,
    PAPER_TABLE4,
    PAPER_TABLE4_ACCURACY,
    PAPER_TABLE5,
)
from repro.experiments.protocol import FULL, REDUCED, current_protocol
from repro.experiments.reporting import format_float, render_table, side_by_side
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3


class TestPaperReference:
    def test_table2_totals_consistent(self):
        assert sum(PAPER_TABLE2["dimension_counts"].values()) == 1420

    def test_table4_rows_complete(self):
        assert len(PAPER_TABLE4) == 9
        for scores in PAPER_TABLE4.values():
            assert len(scores) == 6

    def test_accuracy_ordering_facts(self):
        # The facts the reproduction must preserve.
        acc = PAPER_TABLE4_ACCURACY
        assert acc["MentalBERT"] == max(acc.values())
        assert acc["Gaussian NB"] == min(acc.values())
        assert min(acc[m] for m in ("BERT", "DistilBERT", "MentalBERT",
                                    "Flan-T5", "XLNet", "GPT-2.0")) > max(
            acc[m] for m in ("LR", "Linear SVM", "Gaussian NB")
        )

    def test_table5_mentalbert_wins_every_metric(self):
        for metric in ("f1", "precision", "recall", "rouge", "bleu"):
            assert PAPER_TABLE5["MentalBERT"][metric] > PAPER_TABLE5["LR"][metric]


class TestProtocol:
    def test_default_is_reduced(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert current_protocol() is REDUCED

    def test_env_switches_to_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert current_protocol() is FULL

    def test_full_matches_paper_protocol(self):
        assert FULL.n_folds == 10
        assert FULL.transformer_epochs is None  # per-model configured epochs

    def test_model_config_scaling(self):
        config = REDUCED.model_config("BERT")
        assert config.epochs == REDUCED.transformer_epochs
        assert config.pretrain_steps < FULL.model_config("BERT").pretrain_steps


class TestReporting:
    def test_render_table_aligns(self):
        table = render_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_title_included(self):
        assert render_table(["x"], [[1]], title="T").startswith("T\n")

    def test_side_by_side(self):
        assert side_by_side(0.5, 0.25) == "0.50 (0.25)"

    def test_format_float(self):
        assert format_float(0.123456, 3) == "0.123"


class TestRegistry:
    def test_eight_experiments_registered(self):
        assert list(EXPERIMENTS) == ["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_specs_have_descriptions(self):
        for spec in EXPERIMENTS.values():
            assert spec.paper_artifact
            assert spec.description


class TestCheapExperiments:
    def test_e1_matches_paper_exactly(self, dataset):
        result = run_table2(dataset)
        assert result.matches_paper_exactly()
        text = format_table2(result)
        assert "37082" in text
        assert "1420" in text

    def test_e2_overlap_strong(self, dataset):
        result = run_table3(dataset)
        shared, total = result.total_overlap()
        assert shared >= total - 10  # at least ~75% of paper words recovered
        assert "Dimension" in format_table3(result)

    def test_e5_kappa_close(self, dataset):
        result = run_kappa(dataset)
        assert result.within_points < 3.0
        assert str(round(PAPER_KAPPA_PERCENT, 2)) in format_kappa(result)


class TestFigureExperiments:
    def test_figure2_funnel(self, dataset):
        from repro.experiments.figure2 import format_figure2, run_figure2

        result = run_figure2(dataset)
        assert result.funnel.raw == 2000
        assert result.funnel.after_topic_filter == 1420
        assert result.clean_matches_gold
        assert result.n_guidelines == 7
        assert result.n_perplexity_rules == 6
        assert "2000" in format_figure2(result)

    def test_figure1_example(self, small_dataset):
        from repro.core.pipeline import WellnessClassifier
        from repro.experiments.figure1 import format_figure1, run_figure1

        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        clf = WellnessClassifier("LR").fit(split.train)
        result = run_figure1(small_dataset, classifier=clf)
        assert result.gold_span in result.text
        assert result.candidate_dimensions
        assert result.gold_label.code in format_figure1(result)
