"""Tests for calibration internals and the template banks."""

import numpy as np
import pytest

from repro.core.labels import DIMENSIONS
from repro.corpus.calibrate import CalibrationError, calibrate
from repro.corpus.generator import DraftPost, GeneratorConfig, generate_drafts
from repro.corpus.templates import (
    EMPHASIS_MARKERS,
    FILLER_SENTENCES,
    MEDIUM_FILLER_SENTENCES,
    OFFTOPIC_SENTENCES,
    PAD_WORDS,
    SHORT_FILLER_SENTENCES,
    SPAN_TEMPLATES,
    SpanTemplate,
    render_span_template,
)
from repro.core.labels import WellnessDimension
from repro.text.tokenize import count_words


class TestTemplateBank:
    def test_every_dimension_has_templates(self):
        for dim in DIMENSIONS:
            assert len(SPAN_TEMPLATES[dim]) >= 6

    def test_render_span_inside_sentence(self):
        rng = np.random.default_rng(0)
        for dim in DIMENSIONS:
            for template in SPAN_TEMPLATES[dim]:
                sentence, span = render_span_template(template, rng)
                assert span in sentence
                assert sentence.endswith(".")
                # The span must end before the final period so pad-word
                # insertion can never disturb it.
                assert sentence.index(span) + len(span) <= len(sentence) - 1

    def test_render_uses_choices(self):
        template = SpanTemplate("", "i feel {a}", ".", ("lost", "numb"))
        rng = np.random.default_rng(1)
        rendered = {render_span_template(template, rng)[1] for _ in range(20)}
        assert rendered == {"i feel lost", "i feel numb"}

    def test_filler_pools_disjoint_lengths_available(self):
        lengths = {count_words(s) for s in FILLER_SENTENCES}
        short_lengths = {count_words(s) for s in SHORT_FILLER_SENTENCES}
        assert min(short_lengths) < min(lengths)

    def test_all_fillers_end_with_period(self):
        for pool in (FILLER_SENTENCES, MEDIUM_FILLER_SENTENCES, SHORT_FILLER_SENTENCES):
            assert all(s.endswith(".") for s in pool)

    def test_pad_words_are_single_tokens(self):
        assert all(count_words(w) == 1 for w in PAD_WORDS)

    def test_emphasis_markers_lowercase_phrases(self):
        for marker in EMPHASIS_MARKERS:
            assert marker == marker.lower()
            assert count_words(marker) >= 2

    def test_offtopic_sentences_have_no_distress_vocab(self):
        from repro.corpus.preprocess import is_on_topic

        for sentence in OFFTOPIC_SENTENCES:
            assert not is_on_topic(sentence), sentence


class TestCalibrationBehaviour:
    def _config(self, words, sentences, seed=3):
        counts = {d: 30 for d in DIMENSIONS}
        return GeneratorConfig(
            class_counts=counts,
            seed=seed,
            target_total_words=words,
            target_total_sentences=sentences,
        )

    def test_hits_feasible_targets_exactly(self):
        # Measure an uncalibrated draw, then target slightly different
        # totals; calibration must land exactly.
        probe = GeneratorConfig(
            class_counts={d: 30 for d in DIMENSIONS},
            seed=3,
            target_total_words=None,
            target_total_sentences=None,
        )
        drafts = generate_drafts(probe)
        words = sum(d.word_count() for d in drafts)
        sentences = sum(d.sentence_count() for d in drafts)
        config = self._config(words + 120, sentences + 25)
        drafts = generate_drafts(config)
        calibrate(drafts, config)
        assert sum(d.word_count() for d in drafts) == words + 120
        assert sum(d.sentence_count() for d in drafts) == sentences + 25

    def test_shrinks_toward_lower_targets(self):
        probe = GeneratorConfig(
            class_counts={d: 30 for d in DIMENSIONS},
            seed=4,
            target_total_words=None,
            target_total_sentences=None,
        )
        drafts = generate_drafts(probe)
        words = sum(d.word_count() for d in drafts)
        sentences = sum(d.sentence_count() for d in drafts)
        config = self._config(words - 150, sentences - 10, seed=4)
        drafts = generate_drafts(config)
        calibrate(drafts, config)
        assert sum(d.word_count() for d in drafts) == words - 150
        assert sum(d.sentence_count() for d in drafts) == sentences - 10

    def test_preserves_spans(self):
        # Feasible targets for a 180-post corpus: measure, then nudge.
        probe = GeneratorConfig(
            class_counts={d: 30 for d in DIMENSIONS},
            seed=5,
            target_total_words=None,
            target_total_sentences=None,
        )
        measured = generate_drafts(probe)
        config = GeneratorConfig(
            class_counts={d: 30 for d in DIMENSIONS},
            seed=5,
            target_total_words=sum(d.word_count() for d in measured) + 60,
            target_total_sentences=sum(d.sentence_count() for d in measured) + 12,
        )
        from repro.corpus.generator import assemble

        drafts = calibrate(generate_drafts(config), config)
        for i, draft in enumerate(drafts[:200]):
            inst = assemble(draft, f"c{i}")
            assert inst.post.text[inst.span.start : inst.span.end] == inst.span.text

    def test_preserves_uniqueness(self):
        probe = GeneratorConfig(
            class_counts={d: 40 for d in DIMENSIONS},
            seed=6,
            target_total_words=None,
            target_total_sentences=None,
        )
        measured = generate_drafts(probe)
        config = GeneratorConfig(
            class_counts={d: 40 for d in DIMENSIONS},
            seed=6,
            target_total_words=sum(d.word_count() for d in measured) + 80,
            target_total_sentences=sum(d.sentence_count() for d in measured) + 15,
        )
        drafts = calibrate(generate_drafts(config), config)
        texts = [d.text() for d in drafts]
        assert len(set(texts)) == len(texts)

    def test_duplicate_drafts_rejected(self):
        draft = DraftPost(
            label=WellnessDimension.SOCIAL,
            category="Anxiety",
            sentences=[("I feel alone.", "span")],
            span_sentence_idx=0,
            span_local=(0, 12),
        )
        clone = DraftPost(
            label=WellnessDimension.SOCIAL,
            category="Anxiety",
            sentences=[("I feel alone.", "span")],
            span_sentence_idx=0,
            span_local=(0, 12),
        )
        with pytest.raises(CalibrationError, match="unique"):
            calibrate([draft, clone], GeneratorConfig())

    def test_impossible_word_target_raises(self):
        config = GeneratorConfig(
            class_counts={WellnessDimension.SOCIAL: 8},
            seed=7,
            target_total_words=40,  # far below the content minimum
            target_total_sentences=None,
        )
        drafts = generate_drafts(config)
        with pytest.raises(CalibrationError):
            calibrate(drafts, config)

    def test_default_build_grows_maximum_post(self, dataset):
        word_counts = [i.post.word_count for i in dataset]
        sentence_counts = [i.post.sentence_count for i in dataset]
        assert max(word_counts) == 115
        assert max(sentence_counts) == 9
