"""Tests for repro.sparse and the sparse/dense equivalence guarantees.

The contract under test: the CSR pipeline (sparse TF-IDF features +
sparse classifier paths) produces the *same numbers* as the dense
pipeline — identical TF-IDF matrices and identical classifier
predictions on the corpus generator's fixtures — and the parallel
experiment runner produces results independent of ``--jobs``.
"""

import numpy as np
import pytest

from repro.core.labels import DIMENSIONS
from repro.ml.logistic import LogisticRegression
from repro.ml.multilabel import OneVsRestClassifier
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import LinearSVM
from repro.sparse import CSRMatrix, as_dense, is_sparse
from repro.text.tfidf import TfidfVectorizer


def _random_dense(rng, shape=(7, 5), density=0.4):
    dense = rng.normal(size=shape)
    dense[rng.random(shape) > density] = 0.0
    return dense


class TestCSRMatrix:
    def test_from_dense_roundtrip(self):
        rng = np.random.default_rng(0)
        dense = _random_dense(rng)
        matrix = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(matrix.toarray(), dense)
        assert matrix.nnz == np.count_nonzero(dense)

    def test_from_rows_with_empty_rows(self):
        matrix = CSRMatrix.from_rows(
            [
                (np.array([2, 0]), np.array([5.0, 1.0])),
                (np.array([], dtype=np.int64), np.array([])),
                (np.array([1]), np.array([3.0])),
            ],
            n_cols=3,
        )
        expected = np.array([[1.0, 0.0, 5.0], [0.0, 0.0, 0.0], [0.0, 3.0, 0.0]])
        np.testing.assert_array_equal(matrix.toarray(), expected)

    def test_duplicate_columns_sum_consistently(self):
        # scipy semantics: duplicate (row, col) entries accumulate, and
        # toarray() agrees with the product kernels.
        matrix = CSRMatrix.from_rows(
            [(np.array([0, 0, 1]), np.array([1.0, 2.0, 4.0]))], n_cols=2
        )
        np.testing.assert_array_equal(matrix.toarray(), [[3.0, 4.0]])
        np.testing.assert_allclose(matrix @ np.eye(2), [[3.0, 4.0]])
        np.testing.assert_allclose(matrix.column_sums(), [3.0, 4.0])

    def test_matmul_matches_dense(self):
        rng = np.random.default_rng(1)
        dense = _random_dense(rng)
        other = rng.normal(size=(5, 3))
        matrix = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(matrix @ other, dense @ other)

    def test_matmul_vector(self):
        rng = np.random.default_rng(2)
        dense = _random_dense(rng)
        vec = rng.normal(size=5)
        out = CSRMatrix.from_dense(dense) @ vec
        assert out.shape == (7,)
        np.testing.assert_allclose(out, dense @ vec)

    def test_matmul_shape_mismatch(self):
        matrix = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(ValueError):
            matrix @ np.ones((4, 2))

    def test_transpose_matmul_matches_dense(self):
        rng = np.random.default_rng(3)
        dense = _random_dense(rng)
        other = rng.normal(size=(7, 2))
        matrix = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(
            matrix.transpose_matmul(other), dense.T @ other
        )

    def test_empty_rows_survive_products(self):
        dense = np.zeros((4, 3))
        dense[1, 2] = 5.0
        matrix = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(matrix @ np.eye(3), dense)
        np.testing.assert_allclose(matrix.row_norms(), [0.0, 5.0, 0.0, 0.0])

    def test_with_intercept_column(self):
        rng = np.random.default_rng(4)
        dense = _random_dense(rng)
        extended = CSRMatrix.from_dense(dense).with_intercept_column()
        expected = np.hstack([dense, np.ones((dense.shape[0], 1))])
        np.testing.assert_array_equal(extended.toarray(), expected)

    def test_select_rows(self):
        rng = np.random.default_rng(5)
        dense = _random_dense(rng)
        picked = CSRMatrix.from_dense(dense).select_rows(np.array([4, 0, 4]))
        np.testing.assert_array_equal(picked.toarray(), dense[[4, 0, 4]])

    def test_column_moments_match_dense(self):
        rng = np.random.default_rng(6)
        dense = _random_dense(rng)
        mean, var = CSRMatrix.from_dense(dense).column_moments()
        np.testing.assert_allclose(mean, dense.mean(axis=0))
        np.testing.assert_allclose(var, dense.var(axis=0), atol=1e-12)

    def test_scale_columns_and_normalize(self):
        rng = np.random.default_rng(7)
        dense = _random_dense(rng)
        factors = rng.uniform(0.5, 2.0, size=5)
        scaled = CSRMatrix.from_dense(dense).scale_columns(factors)
        np.testing.assert_allclose(scaled.toarray(), dense * factors)
        normalized = scaled.normalized_rows().toarray()
        norms = np.linalg.norm(normalized, axis=1)
        for i, norm in enumerate(norms):
            if np.any(dense[i] != 0):
                assert norm == pytest.approx(1.0)
            else:
                assert norm == 0.0

    def test_invalid_structure_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.ones(2), np.array([0, 5]), np.array([0, 2]), (1, 3))
        with pytest.raises(ValueError):
            CSRMatrix(np.ones(2), np.array([0, 1]), np.array([0, 1]), (2, 3))

    def test_helpers(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0]])
        matrix = CSRMatrix.from_dense(dense)
        assert is_sparse(matrix) and not is_sparse(dense)
        np.testing.assert_array_equal(as_dense(matrix), dense)
        np.testing.assert_array_equal(as_dense(dense), dense)
        assert matrix.density == pytest.approx(0.5)


class TestSparseDenseEquivalence:
    """Sparse and dense pipelines must produce the same numbers."""

    @pytest.fixture(scope="class")
    def features(self, small_dataset):
        texts = small_dataset.texts
        dense = TfidfVectorizer(max_features=3000).fit_transform(texts)
        sparse = TfidfVectorizer(
            max_features=3000, sparse_output=True
        ).fit_transform(texts)
        targets = np.asarray(
            [DIMENSIONS.index(label) for label in small_dataset.labels]
        )
        return dense, sparse, targets

    def test_tfidf_matrices_identical(self, features):
        dense, sparse, _ = features
        assert is_sparse(sparse)
        np.testing.assert_allclose(sparse.toarray(), dense, atol=1e-12)

    def test_logistic_predictions_identical(self, features):
        dense, sparse, targets = features
        dense_model = LogisticRegression(max_iter=100).fit(dense, targets)
        sparse_model = LogisticRegression(max_iter=100).fit(sparse, targets)
        np.testing.assert_array_equal(
            dense_model.predict(dense), sparse_model.predict(sparse)
        )
        np.testing.assert_allclose(
            dense_model.predict_proba(dense),
            sparse_model.predict_proba(sparse),
            atol=1e-8,
        )

    def test_svm_predictions_identical(self, features):
        dense, sparse, targets = features
        dense_model = LinearSVM(epochs=5, seed=0).fit(dense, targets)
        sparse_model = LinearSVM(epochs=5, seed=0).fit(sparse, targets)
        np.testing.assert_array_equal(
            dense_model.predict(dense), sparse_model.predict(sparse)
        )

    def test_naive_bayes_predictions_identical(self, features):
        dense, sparse, targets = features
        dense_model = GaussianNaiveBayes().fit(dense, targets)
        sparse_model = GaussianNaiveBayes().fit(sparse, targets)
        np.testing.assert_array_equal(
            dense_model.predict(dense), sparse_model.predict(sparse)
        )
        np.testing.assert_allclose(
            dense_model.predict_proba(dense),
            sparse_model.predict_proba(sparse),
            atol=1e-8,
        )

    def test_one_vs_rest_accepts_sparse(self, features):
        dense, sparse, targets = features
        label_sets = [{int(t)} for t in targets]
        dense_clf = OneVsRestClassifier(list(range(6)), max_iter=50).fit(
            dense, label_sets
        )
        sparse_clf = OneVsRestClassifier(list(range(6)), max_iter=50).fit(
            sparse, label_sets
        )
        assert dense_clf.predict(dense) == sparse_clf.predict(sparse)

    def test_standard_scaler_sparse_stats_match(self, features):
        dense, sparse, _ = features
        dense_scaler = StandardScaler().fit(dense)
        sparse_scaler = StandardScaler().fit(sparse)
        np.testing.assert_allclose(
            dense_scaler.mean_, sparse_scaler.mean_, atol=1e-12
        )
        np.testing.assert_allclose(
            dense_scaler.scale_, sparse_scaler.scale_, atol=1e-9
        )
        scaled = StandardScaler(with_mean=False).fit(sparse).transform(sparse)
        assert is_sparse(scaled)


class TestTokenCache:
    def test_fit_transform_tokenises_once(self, monkeypatch):
        vectorizer = TfidfVectorizer()
        calls = []
        original = TfidfVectorizer._analyze

        def counting_analyze(self, text):
            calls.append(text)
            return original(self, text)

        monkeypatch.setattr(TfidfVectorizer, "_analyze", counting_analyze)
        docs = ["one two three", "two three four", "three four five"]
        vectorizer.fit_transform(docs)
        assert len(calls) == len(docs)  # fit + transform share the cache
        vectorizer.transform(docs)
        assert len(calls) == len(docs)  # still cached

    def test_cache_does_not_change_results(self):
        docs = ["a b c", "b c d", "c d e"]
        warm = TfidfVectorizer()
        warm_matrix = warm.fit_transform(docs)
        cold = TfidfVectorizer()
        cold.fit(docs)
        cold._count_cache.clear()  # simulate unseen documents
        np.testing.assert_allclose(cold.transform(docs), warm_matrix)


class TestParallelRunner:
    """run_experiment results must be order- and jobs-independent."""

    CHEAP = ["E1", "E5", "E6", "E7"]

    def test_results_order_independent_under_jobs_4(self):
        from repro.experiments.runner import run_many

        serial = run_many(self.CHEAP, jobs=1)
        parallel = run_many(self.CHEAP, jobs=4)
        assert [r.experiment_id for r in parallel] == self.CHEAP
        assert [r.report for r in parallel] == [r.report for r in serial]
        reversed_parallel = run_many(self.CHEAP[::-1], jobs=4)
        assert {r.experiment_id: r.report for r in reversed_parallel} == {
            r.experiment_id: r.report for r in serial
        }

    def test_unknown_experiment_rejected_before_running(self):
        from repro.experiments.runner import run_many

        with pytest.raises(KeyError):
            run_many(["E1", "E42"], jobs=4)

    def test_invalid_jobs_rejected(self):
        from repro.experiments.runner import run_many

        with pytest.raises(ValueError):
            run_many(["E1"], jobs=0)

    def test_cli_accepts_jobs_flag(self, capsys):
        from repro.experiments.runner import main

        assert main(["run", "E1", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "--jobs 2" in out


class TestTable4FoldParallelism:
    def test_traditional_scores_identical_across_jobs(self, small_dataset):
        from repro.experiments.protocol import REDUCED
        from repro.experiments.table4 import run_table4

        serial = run_table4(
            small_dataset, protocol=REDUCED, baselines=["Gaussian NB"], jobs=1
        )
        threaded = run_table4(
            small_dataset, protocol=REDUCED, baselines=["Gaussian NB"], jobs=4
        )
        assert (
            serial.scores["Gaussian NB"].fold_accuracies
            == threaded.scores["Gaussian NB"].fold_accuracies
        )
        assert serial.accuracy_of("Gaussian NB") == threaded.accuracy_of(
            "Gaussian NB"
        )
