"""Tests for repro.text.tfidf and repro.text.ngrams."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.ngrams import ngram_counts, ngrams, skipgrams
from repro.text.tfidf import TfidfVectorizer


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_unigrams(self):
        assert ngrams(["a", "b"], 1) == [("a",), ("b",)]

    def test_n_larger_than_sequence(self):
        assert ngrams(["a"], 2) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_counts(self):
        counts = ngram_counts(["a", "a", "a"], 2)
        assert counts[("a", "a")] == 2

    def test_skipgrams_k0_equals_ngrams(self):
        tokens = ["a", "b", "c", "d"]
        assert set(skipgrams(tokens, 2, 0)) == set(ngrams(tokens, 2))

    def test_skipgrams_allow_gaps(self):
        grams = skipgrams(["a", "b", "c"], 2, 1)
        assert ("a", "c") in grams
        assert ("a", "b") in grams

    def test_skipgrams_invalid(self):
        with pytest.raises(ValueError):
            skipgrams(["a"], 0, 1)
        with pytest.raises(ValueError):
            skipgrams(["a"], 1, -1)

    @given(st.lists(st.sampled_from("abc"), max_size=12), st.integers(1, 3))
    def test_ngram_count_formula(self, tokens, n):
        assert len(ngrams(tokens, n)) == max(len(tokens) - n + 1, 0)


class TestTfidfVectorizer:
    def test_fit_transform_shape(self):
        docs = ["cat sat mat", "dog sat log", "cat dog"]
        matrix = TfidfVectorizer().fit_transform(docs)
        assert matrix.shape[0] == 3
        assert matrix.shape[1] == 5  # cat dog log mat sat

    def test_rows_l2_normalised(self):
        docs = ["a b c", "b c d"]
        matrix = TfidfVectorizer().fit_transform(docs)
        norms = np.linalg.norm(matrix, axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-9)

    def test_idf_formula(self):
        docs = ["cat", "cat", "dog"]
        vec = TfidfVectorizer().fit(docs)
        idf = dict(zip(vec.feature_names, vec.idf))
        assert idf["cat"] == pytest.approx(math.log(4 / 3) + 1)
        assert idf["dog"] == pytest.approx(math.log(4 / 2) + 1)

    def test_unknown_terms_ignored(self):
        vec = TfidfVectorizer().fit(["known words here"])
        out = vec.transform(["totally new text"])
        assert np.all(out == 0.0)

    def test_zero_row_stays_zero(self):
        vec = TfidfVectorizer().fit(["alpha beta"])
        out = vec.transform([""])
        assert np.all(out == 0.0)
        assert not np.isnan(out).any()

    def test_max_features_keeps_most_frequent(self):
        docs = ["common common rare", "common other"]
        vec = TfidfVectorizer(max_features=1).fit(docs)
        assert vec.feature_names == ["common"]

    def test_min_df_filters(self):
        vec = TfidfVectorizer(min_df=2).fit(["a b", "a c"])
        assert vec.feature_names == ["a"]

    def test_max_df_filters_ubiquitous(self):
        vec = TfidfVectorizer(max_df=0.5).fit(["a b", "a c"])
        assert "a" not in vec.feature_names

    def test_stopword_removal(self):
        vec = TfidfVectorizer(remove_stopwords=True).fit(["the cat is here"])
        assert vec.feature_names == ["cat"]

    def test_sublinear_tf(self):
        docs = ["word word word word"]
        plain = TfidfVectorizer().fit_transform(docs)
        sub = TfidfVectorizer(sublinear_tf=True).fit_transform(docs)
        # Single feature, both L2-normalised to 1; check raw weights differ
        # through a two-feature document instead.
        docs2 = ["word word word word other"]
        vec_plain = TfidfVectorizer().fit(docs2)
        vec_sub = TfidfVectorizer(sublinear_tf=True).fit(docs2)
        ratio_plain = vec_plain.transform(docs2)[0]
        ratio_sub = vec_sub.transform(docs2)[0]
        idx_word = vec_plain.feature_names.index("word")
        idx_other = vec_plain.feature_names.index("other")
        assert ratio_plain[idx_word] / ratio_plain[idx_other] > (
            ratio_sub[idx_word] / ratio_sub[idx_other]
        )

    def test_bigram_features(self):
        vec = TfidfVectorizer(ngram_range=(1, 2)).fit(["red panda eats"])
        assert "red panda" in vec.feature_names

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            TfidfVectorizer().fit([])

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(["x"])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TfidfVectorizer(min_df=0)
        with pytest.raises(ValueError):
            TfidfVectorizer(max_df=0.0)
        with pytest.raises(ValueError):
            TfidfVectorizer(ngram_range=(2, 1))

    def test_feature_order_alphabetical(self):
        vec = TfidfVectorizer().fit(["zebra apple mango"])
        assert vec.feature_names == sorted(vec.feature_names)

    @given(
        st.lists(
            st.lists(st.sampled_from(["aa", "bb", "cc", "dd"]), min_size=1, max_size=8),
            min_size=1,
            max_size=8,
        )
    )
    def test_norms_bounded(self, word_docs):
        docs = [" ".join(words) for words in word_docs]
        matrix = TfidfVectorizer().fit_transform(docs)
        norms = np.linalg.norm(matrix, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)
