"""Golden wire-contract tests for the ``/v1`` HTTP protocol.

Each JSON fixture under ``tests/fixtures/protocol/`` pins one exchange:
the request a client sends and the exact status + body the gateway must
answer, with volatile measurement fields (latency, counters) replaced by
a ``"<volatile>"`` sentinel.  The fixtures are committed, so any change
to the wire surface — renamed field, reshaped envelope, new error code —
fails here and forces a deliberate fixture update in the same diff.

Two gateway topologies are pinned:

* ``single`` — the pre-fleet compatibility mapping: one bare
  ``InferenceServer`` wrapped as a one-entry fleet named ``default``.
  These fixtures are the old single-checkpoint protocol; they must keep
  passing unchanged.
* ``fleet`` — champion/challenger/shadow at 90/10 with ``split_seed=0``.
  The pinned ``request_id`` fixture also freezes the A/B hash: changing
  the split function breaks that fixture.

Regenerate (after an intentional protocol change) with::

    PYTHONPATH=src python tests/test_protocol_contract.py
"""

from __future__ import annotations

import hashlib
import json
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.engine.engine import PredictionEngine
from repro.engine.server import InferenceServer
from repro.serving.fleet import ModelEntry, ModelFleet
from repro.serving.gateway import ServingGateway

FIXTURES_DIR = Path(__file__).parent / "fixtures" / "protocol"

# Fields whose values are measurements, not contract: both sides are
# replaced with a sentinel before comparison.  Everything else must
# match the committed fixture exactly.
VOLATILE_KEYS = frozenset(
    {
        "latency_ms",
        "requests",
        "shed",
        "deadline_shed",
        "shed_rate",
        "shadow_traffic",
    }
)


class GoldenBackend:
    """Probabilities as a pure function of the text: bitwise-stable
    responses, so fixtures can pin full probability vectors."""

    n_classes = 6

    def proba_batch(self, texts: list[str]) -> np.ndarray:
        rows = np.empty((len(texts), 6), dtype=np.float64)
        for i, text in enumerate(texts):
            digest = hashlib.sha256(text.encode("utf-8")).digest()
            vals = np.frombuffer(digest[:6], dtype=np.uint8).astype(np.float64) + 1.0
            rows[i] = vals / vals.sum()
        return rows


def _make_server(model_id: str) -> InferenceServer:
    return InferenceServer(PredictionEngine(GoldenBackend(), model_id=model_id))


def build_single_gateway() -> ServingGateway:
    """The pre-fleet invocation: one bare server, compat-wrapped."""
    return ServingGateway(_make_server("golden@1"), baseline="LR")


def build_fleet_gateway() -> ServingGateway:
    fleet = ModelFleet(
        [
            ModelEntry(
                "champion", _make_server("champion@1"), weight=0.9, baseline="LR"
            ),
            ModelEntry(
                "challenger",
                _make_server("challenger@1"),
                weight=0.1,
                baseline="Linear SVM",
            ),
            ModelEntry("mirror", _make_server("mirror@1"), shadow=True),
        ],
        split_seed=0,
    )
    return ServingGateway(fleet)


# (fixture name, gateway topology, method, path, request body or None)
CASES = [
    ("single_predict_minimal", "single", "POST", "/v1/predict",
     {"text": "the quick brown fox"}),
    ("single_predict_top_k", "single", "POST", "/v1/predict",
     {"text": "the quick brown fox", "top_k": 2}),
    ("single_predict_batch", "single", "POST", "/v1/predict_batch",
     {"texts": ["hello serving", "wellness check"]}),
    ("single_models", "single", "GET", "/v1/models", None),
    ("single_healthz", "single", "GET", "/healthz", None),
    ("single_error_missing_text", "single", "POST", "/v1/predict", {}),
    ("single_error_bad_top_k", "single", "POST", "/v1/predict",
     {"text": "x", "top_k": "two"}),
    ("single_error_unknown_route", "single", "POST", "/v1/nope",
     {"text": "x"}),
    ("fleet_predict_explicit_model", "fleet", "POST", "/v1/predict",
     {"text": "route me", "model": "challenger"}),
    ("fleet_predict_pinned_request_id", "fleet", "POST", "/v1/predict",
     {"text": "route me", "request_id": "golden-request-1"}),
    ("fleet_predict_batch_envelope", "fleet", "POST", "/v1/predict_batch",
     {"texts": ["a", "b"], "model": "champion", "top_k": 1}),
    ("fleet_error_model_not_found", "fleet", "POST", "/v1/predict",
     {"text": "x", "model": "ghost"}),
    ("fleet_models", "fleet", "GET", "/v1/models", None),
]


def normalize(obj):
    """Replace values under volatile keys with a stable sentinel."""
    if isinstance(obj, dict):
        return {
            key: "<volatile>" if key in VOLATILE_KEYS else normalize(value)
            for key, value in obj.items()
        }
    if isinstance(obj, list):
        return [normalize(item) for item in obj]
    return obj


def exchange(url: str, method: str, path: str, body) -> tuple[int, dict]:
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url + path,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        with error:
            return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def gateways():
    with build_single_gateway() as single, build_fleet_gateway() as fleet:
        yield {"single": single, "fleet": fleet}


@pytest.mark.parametrize(
    "name,topology,method,path,body", CASES, ids=[case[0] for case in CASES]
)
def test_wire_contract(gateways, name, topology, method, path, body):
    fixture_path = FIXTURES_DIR / f"{name}.json"
    assert fixture_path.exists(), (
        f"missing golden fixture {fixture_path}; regenerate with "
        f"`PYTHONPATH=src python tests/test_protocol_contract.py`"
    )
    fixture = json.loads(fixture_path.read_text(encoding="utf-8"))
    assert fixture["method"] == method and fixture["path"] == path
    assert fixture["request"] == body

    status, payload = exchange(gateways[topology].url, method, path, body)
    assert status == fixture["status"], payload
    assert normalize(payload) == fixture["response"], (
        f"wire contract drift on {name}; if the protocol change is "
        f"intentional, regenerate the fixtures and review the diff"
    )


def test_fixture_dir_matches_case_list():
    """Every committed fixture is exercised — no orphaned pins."""
    committed = {path.stem for path in FIXTURES_DIR.glob("*.json")}
    assert committed == {case[0] for case in CASES}


def regenerate() -> None:
    FIXTURES_DIR.mkdir(parents=True, exist_ok=True)
    with build_single_gateway() as single, build_fleet_gateway() as fleet:
        urls = {"single": single.url, "fleet": fleet.url}
        for name, topology, method, path, body in CASES:
            status, payload = exchange(urls[topology], method, path, body)
            fixture = {
                "name": name,
                "gateway": topology,
                "method": method,
                "path": path,
                "request": body,
                "status": status,
                "response": normalize(payload),
            }
            out = FIXTURES_DIR / f"{name}.json"
            out.write_text(
                json.dumps(fixture, indent=2, sort_keys=False) + "\n",
                encoding="utf-8",
            )
            print(f"wrote {out}")


if __name__ == "__main__":
    regenerate()
