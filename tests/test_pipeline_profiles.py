"""Tests for the WellnessClassifier pipeline and wellness profiling."""

import numpy as np
import pytest

from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.core.pipeline import (
    TRADITIONAL_BASELINES,
    TRANSFORMER_BASELINES,
    WellnessClassifier,
)
from repro.core.profiles import build_profile, triage


class TestWellnessClassifier:
    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError, match="unknown baseline"):
            WellnessClassifier("RoBERTa")

    def test_nine_baselines_exposed(self):
        assert len(TRADITIONAL_BASELINES) + len(TRANSFORMER_BASELINES) == 9

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            WellnessClassifier("LR").predict(["text"])

    def test_fit_empty_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            WellnessClassifier("LR").fit(small_dataset.subset([]))

    @pytest.mark.parametrize("name", TRADITIONAL_BASELINES)
    def test_traditional_baselines_learn(self, name, small_dataset):
        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        clf = WellnessClassifier(name).fit(split.train)
        accuracy = clf.accuracy(split.test)
        assert accuracy > 1.0 / 6

    def test_transformer_fast_mode_learns(self, small_dataset):
        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        clf = WellnessClassifier("DistilBERT", fast=True).fit(split.train)
        predictions = clf.predict(split.test.texts)
        assert len(predictions) == 22
        assert all(p in DIMENSIONS for p in predictions)

    def test_predict_proba_shape(self, small_dataset):
        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        for name in ("LR", "Linear SVM", "Gaussian NB"):
            clf = WellnessClassifier(name).fit(split.train)
            probs = clf.predict_proba(split.test.texts[:5])
            assert probs.shape == (5, 6)
            np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)

    def test_explain_returns_keywords(self, small_dataset):
        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        clf = WellnessClassifier("LR").fit(split.train)
        explanation = clf.explain(split.test[0].text, n_samples=80)
        assert explanation.top_words(3)

    def test_classifier_beats_chance_on_clear_posts(self, small_dataset):
        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        clf = WellnessClassifier("LR").fit(split.train)
        clear = [
            inst
            for inst in split.test
            if inst.metadata.get("post_type") == "clear"
            and not inst.metadata.get("noisy")
        ]
        if clear:
            predictions = clf.predict([i.text for i in clear])
            accuracy = sum(
                p == i.label for p, i in zip(predictions, clear)
            ) / len(clear)
            assert accuracy > 0.5


class TestProfiles:
    def test_build_profile_counts(self):
        predictions = [
            WellnessDimension.SOCIAL,
            WellnessDimension.SOCIAL,
            WellnessDimension.EMOTIONAL,
        ]
        profile = build_profile("user-1", predictions)
        assert profile.n_posts == 3
        assert profile.share(WellnessDimension.SOCIAL) == pytest.approx(2 / 3)
        assert profile.dominant is WellnessDimension.SOCIAL

    def test_empty_profile(self):
        profile = build_profile("user-0", [])
        assert profile.dominant is None
        assert profile.share(WellnessDimension.SOCIAL) == 0.0

    def test_as_percentages(self):
        profile = build_profile("u", [WellnessDimension.PHYSICAL] * 4)
        percentages = profile.as_percentages()
        assert percentages[WellnessDimension.PHYSICAL] == 100.0
        assert sum(percentages.values()) == pytest.approx(100.0)

    def test_triage_flags_acute_dominance(self):
        predictions = [WellnessDimension.SPIRITUAL] * 3 + [
            WellnessDimension.EMOTIONAL
        ] * 2
        decision = triage(build_profile("u", predictions))
        assert decision.flagged
        assert any("acute" in r for r in decision.reasons)

    def test_triage_flags_breadth(self):
        predictions = [
            WellnessDimension.INTELLECTUAL,
            WellnessDimension.VOCATIONAL,
            WellnessDimension.PHYSICAL,
            WellnessDimension.SOCIAL,
        ]
        decision = triage(build_profile("u", predictions))
        assert decision.flagged
        assert any("spans" in r for r in decision.reasons)

    def test_triage_ignores_thin_histories(self):
        predictions = [WellnessDimension.SPIRITUAL] * 2
        decision = triage(build_profile("u", predictions), min_posts=3)
        assert not decision.flagged

    def test_triage_passes_benign_profile(self):
        predictions = [WellnessDimension.VOCATIONAL] * 5
        decision = triage(build_profile("u", predictions))
        assert not decision.flagged
