"""Tests for LIME, ROUGE, BLEU and span-similarity scoring."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.explain.bleu import bleu, brevity_penalty, modified_precision
from repro.explain.lime import LimeTextExplainer
from repro.explain.rouge import rouge_l, rouge_n
from repro.explain.similarity import keyword_similarity, score_explanations


class TestRouge:
    def test_identical_texts(self):
        score = rouge_n("the cat sat", "the cat sat", 1)
        assert score.f1 == pytest.approx(1.0)

    def test_disjoint_texts(self):
        score = rouge_n("aaa bbb", "ccc ddd", 1)
        assert score.f1 == 0.0

    def test_partial_overlap(self):
        score = rouge_n("the cat", "the cat sat down", 1)
        assert score.precision == pytest.approx(1.0)
        assert score.recall == pytest.approx(0.5)

    def test_bigram_order_matters(self):
        same_bag = rouge_n("cat the", "the cat", 2)
        assert same_bag.f1 == 0.0

    def test_clipping(self):
        score = rouge_n("the the the", "the cat", 1)
        assert score.precision == pytest.approx(1 / 3)

    def test_rouge_l_subsequence(self):
        score = rouge_l("a b c d", "a x b y d")
        # LCS = a b d = 3
        assert score.recall == pytest.approx(3 / 5)
        assert score.precision == pytest.approx(3 / 4)

    def test_rouge_l_empty(self):
        assert rouge_l("", "anything").f1 == 0.0

    @given(st.lists(st.sampled_from("abc"), min_size=1, max_size=10))
    def test_rouge_identity_property(self, words):
        text = " ".join(words)
        assert rouge_n(text, text, 1).f1 == pytest.approx(1.0)
        assert rouge_l(text, text).f1 == pytest.approx(1.0)


class TestBleu:
    def test_identical(self):
        assert bleu("the cat sat on the mat", "the cat sat on the mat") == pytest.approx(
            1.0, abs=1e-6
        )

    def test_disjoint_near_zero(self):
        assert bleu("aaa bbb ccc ddd", "www xxx yyy zzz") < 0.05

    def test_brevity_penalty(self):
        assert brevity_penalty(10, 5) == 1.0
        assert brevity_penalty(5, 10) == pytest.approx(np.exp(-1))
        assert brevity_penalty(0, 5) == 0.0

    def test_modified_precision_clips(self):
        assert modified_precision(["the"] * 4, ["the", "cat"], 1) == pytest.approx(0.25)

    def test_short_candidate_penalised(self):
        long_ref = "one two three four five six seven eight"
        partial = bleu("one two", long_ref)
        full = bleu(long_ref, long_ref)
        assert partial < full

    def test_empty_inputs(self):
        assert bleu("", "ref") == 0.0
        assert bleu("cand", "") == 0.0

    def test_max_n_parameter(self):
        # Unigram-only BLEU is higher than 4-gram BLEU on partial matches.
        cand, ref = "cat dog", "cat bird dog fish"
        assert bleu(cand, ref, max_n=1) >= bleu(cand, ref, max_n=4)


class TestKeywordSimilarity:
    def test_perfect_overlap(self):
        precision, recall, f1 = keyword_similarity(
            ["anxiety", "sleep"], "anxiety sleep"
        )
        assert (precision, recall, f1) == (1.0, 1.0, 1.0)

    def test_function_words_ignored_in_gold(self):
        precision, recall, _ = keyword_similarity(
            ["anxiety"], "the anxiety is a problem"
        )
        assert precision == 1.0
        assert recall == pytest.approx(1 / 2)  # {anxiety, problem}

    def test_empty_inputs(self):
        assert keyword_similarity([], "gold span") == (0.0, 0.0, 0.0)
        assert keyword_similarity(["word"], "") == (0.0, 0.0, 0.0)


class _LinearToyModel:
    """Deterministic 2-class model: P(class 1) rises with 'anxiety' count."""

    def predict_proba(self, texts):
        probs = []
        for text in texts:
            score = min(text.lower().split().count("anxiety") * 0.4, 0.95)
            probs.append([1.0 - score, score])
        return np.asarray(probs)


class TestLime:
    def test_identifies_driving_word(self):
        model = _LinearToyModel()
        explainer = LimeTextExplainer(model.predict_proba, n_samples=200, seed=0)
        explanation = explainer.explain(
            "the anxiety keeps me awake at night", class_index=1
        )
        assert explanation.top_words(1) == ["anxiety"]

    def test_weights_signed_correctly(self):
        model = _LinearToyModel()
        explainer = LimeTextExplainer(model.predict_proba, n_samples=200, seed=0)
        explanation = explainer.explain("anxiety and calm words", class_index=1)
        weights = dict(explanation.word_weights)
        assert weights["anxiety"] > 0
        assert abs(weights["calm"]) < weights["anxiety"]

    def test_deterministic_given_seed(self):
        model = _LinearToyModel()
        a = LimeTextExplainer(model.predict_proba, n_samples=100, seed=5).explain(
            "anxiety words here today"
        )
        b = LimeTextExplainer(model.predict_proba, n_samples=100, seed=5).explain(
            "anxiety words here today"
        )
        assert a.word_weights == b.word_weights

    def test_predicted_class_default(self):
        model = _LinearToyModel()
        explainer = LimeTextExplainer(model.predict_proba, n_samples=100, seed=0)
        explanation = explainer.explain("anxiety anxiety anxiety bad")
        assert explanation.predicted_class == 1

    def test_empty_text_rejected(self):
        explainer = LimeTextExplainer(_LinearToyModel().predict_proba, n_samples=50)
        with pytest.raises(ValueError):
            explainer.explain("...")

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            LimeTextExplainer(_LinearToyModel().predict_proba, n_samples=5)

    def test_surrogate_r2_reasonable(self):
        model = _LinearToyModel()
        explainer = LimeTextExplainer(model.predict_proba, n_samples=300, seed=1)
        explanation = explainer.explain("anxiety here anxiety there calm")
        assert explanation.surrogate_r2 > 0.5

    def test_as_span_joins_keywords(self):
        model = _LinearToyModel()
        explainer = LimeTextExplainer(model.predict_proba, n_samples=100, seed=0)
        explanation = explainer.explain("anxiety is bad", class_index=1)
        assert isinstance(explanation.as_span(2), str)


class TestScoreExplanations:
    def test_averages_metrics(self):
        model = _LinearToyModel()
        explainer = LimeTextExplainer(model.predict_proba, n_samples=100, seed=0)
        explanations = [
            explainer.explain("anxiety ruins my sleep", class_index=1),
            explainer.explain("anxiety again tonight", class_index=1),
        ]
        result = score_explanations(explanations, ["anxiety sleep", "anxiety"])
        assert 0 <= result.f1 <= 1
        assert 0 <= result.rouge <= 1
        assert 0 <= result.bleu <= 1
        assert result.recall > 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            score_explanations([], ["gold"])
        model = _LinearToyModel()
        explainer = LimeTextExplainer(model.predict_proba, n_samples=100, seed=0)
        exp = explainer.explain("anxiety here")
        with pytest.raises(ValueError):
            score_explanations([exp], [])
