"""Tests for the corpus substrate: generator, calibration, forum, funnel."""

import numpy as np
import pytest

from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.corpus.calibrate import CalibrationError, calibrate
from repro.corpus.forum import JunkProfile, SimulatedForum
from repro.corpus.generator import (
    FORUM_CATEGORIES,
    PAPER_CLASS_COUNTS,
    DraftPost,
    GeneratorConfig,
    assemble,
    draft_post,
    generate_drafts,
)
from repro.corpus.hardness import HARDNESS, TypeMixture, WEAK_PHRASES
from repro.corpus.lexicon import SECONDARY_BLEED, all_dimension_words
from repro.corpus.preprocess import is_on_topic, preprocess
from repro.corpus.scraper import scrape_board, scrape_forum


class TestGeneratorConfig:
    def test_paper_counts_sum(self):
        assert sum(PAPER_CLASS_COUNTS.values()) == 1420

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            GeneratorConfig(class_counts={WellnessDimension.SOCIAL: -1})

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            GeneratorConfig(label_noise=1.5)

    def test_invalid_max_words(self):
        with pytest.raises(ValueError):
            GeneratorConfig(max_words=5)


class TestDraftPost:
    def _draft(self, label=WellnessDimension.SOCIAL, seed=0):
        return draft_post(label, np.random.default_rng(seed))

    def test_span_inside_sentence(self):
        for seed in range(30):
            draft = self._draft(seed=seed)
            sentence, kind = draft.sentences[draft.span_sentence_idx]
            assert kind == "span"
            lo, hi = draft.span_local
            assert 0 <= lo < hi <= len(sentence)

    def test_every_dimension_drafts(self):
        rng = np.random.default_rng(1)
        for dim in DIMENSIONS:
            draft = draft_post(dim, rng)
            assert draft.label is dim
            assert draft.category in FORUM_CATEGORIES

    def test_post_types_cover_all(self):
        rng = np.random.default_rng(2)
        types = {
            draft_post(WellnessDimension.EMOTIONAL, rng).post_type
            for _ in range(80)
        }
        assert types == {"clear", "balanced", "generic"}

    def test_balanced_has_partner(self):
        rng = np.random.default_rng(3)
        for _ in range(60):
            draft = draft_post(WellnessDimension.SOCIAL, rng)
            if draft.post_type == "balanced":
                assert draft.secondary_dims
                assert draft.secondary_dims[0] != draft.label
                break
        else:
            pytest.fail("no balanced draft in 60 tries")

    def test_drop_and_append_filler(self):
        draft = DraftPost(
            label=WellnessDimension.SOCIAL,
            category="Anxiety",
            sentences=[("I feel alone.", "span"), ("Thanks for reading.", "filler")],
            span_sentence_idx=0,
            span_local=(0, 12),
        )
        assert draft.can_drop_filler()
        words = draft.drop_last_filler()
        assert words == 3
        assert not draft.can_drop_filler()
        draft.append_filler("Sorry for rambling on.")
        assert draft.sentence_count() == 2

    def test_drop_longest_filler(self):
        draft = DraftPost(
            label=WellnessDimension.SOCIAL,
            category="Anxiety",
            sentences=[
                ("Short one.", "filler"),
                ("I feel alone.", "span"),
                ("This filler is much much longer than the other.", "filler"),
            ],
            span_sentence_idx=1,
            span_local=(0, 12),
        )
        dropped = draft.drop_longest_filler()
        assert dropped == 9
        assert draft.span_sentence_idx == 1

    def test_drop_filler_before_span_shifts_index(self):
        draft = DraftPost(
            label=WellnessDimension.SOCIAL,
            category="Anxiety",
            sentences=[("Filler first.", "filler"), ("I feel alone.", "span")],
            span_sentence_idx=1,
            span_local=(0, 12),
        )
        draft.drop_last_filler()
        assert draft.span_sentence_idx == 0

    def test_insert_pad_word(self):
        draft = DraftPost(
            label=WellnessDimension.SOCIAL,
            category="Anxiety",
            sentences=[("I feel alone.", "span")],
            span_sentence_idx=0,
            span_local=(0, 12),
        )
        draft.insert_pad_word("honestly")
        assert draft.sentences[0][0] == "I feel alone honestly."
        # Span text unchanged at its offsets.
        assert draft.sentences[0][0][0:12] == "I feel alone"


class TestAssemble:
    def test_span_invariant_holds(self):
        rng = np.random.default_rng(5)
        for i in range(100):
            dim = DIMENSIONS[i % 6]
            inst = assemble(draft_post(dim, rng), f"p{i}")
            assert inst.post.text[inst.span.start : inst.span.end] == inst.span.text

    def test_metadata_recorded(self):
        rng = np.random.default_rng(6)
        inst = assemble(draft_post(WellnessDimension.PHYSICAL, rng), "p0")
        assert inst.metadata["post_type"] in ("clear", "balanced", "generic")
        assert "marked" in inst.metadata


class TestGenerateAndCalibrate:
    def test_exact_paper_statistics(self, dataset):
        stats = dataset.statistics()
        assert stats.total_posts == 1420
        assert stats.total_words == 37082
        assert stats.total_sentences == 2271
        assert stats.max_words_per_post == 115
        assert stats.max_sentences_per_post == 9
        assert stats.dimension_counts == PAPER_CLASS_COUNTS

    def test_texts_unique(self, dataset):
        assert len({i.text for i in dataset}) == 1420

    def test_deterministic(self):
        config = GeneratorConfig(
            class_counts={WellnessDimension.SOCIAL: 25, WellnessDimension.EMOTIONAL: 20},
            target_total_words=None,
            target_total_sentences=None,
        )
        a = [d.text() for d in generate_drafts(config)]
        b = [d.text() for d in generate_drafts(config)]
        assert a == b

    def test_class_counts_respected_with_noise(self, small_dataset):
        from collections import Counter

        counts = Counter(i.label for i in small_dataset)
        from tests.conftest import SMALL_CLASS_COUNTS

        assert dict(counts) == SMALL_CLASS_COUNTS

    def test_calibrate_skips_without_targets(self):
        config = GeneratorConfig(
            class_counts={WellnessDimension.SOCIAL: 10},
            target_total_words=None,
            target_total_sentences=None,
        )
        drafts = generate_drafts(config)
        texts_before = [d.text() for d in drafts]
        calibrate(drafts, config)
        assert [d.text() for d in drafts] == texts_before

    def test_calibrate_empty_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate([], GeneratorConfig())


class TestHardness:
    def test_mixtures_sum_to_one(self):
        for mixture in HARDNESS.values():
            assert mixture.clear + mixture.balanced + mixture.generic == pytest.approx(1.0)

    def test_invalid_mixture(self):
        with pytest.raises(ValueError):
            TypeMixture(clear=0.5, balanced=0.5, generic=0.5)

    def test_weak_phrases_shared(self):
        # Every weak phrase belongs to at least two dimensions.
        from collections import Counter

        owners = Counter()
        for phrases in WEAK_PHRASES.values():
            for phrase in set(phrases):
                owners[phrase] += 1
        assert all(count >= 2 for count in owners.values())

    def test_bleed_excludes_self(self):
        for dim, targets in SECONDARY_BLEED.items():
            assert dim not in targets

    def test_lexicons_nonempty(self):
        for dim in DIMENSIONS:
            assert len(all_dimension_words(dim)) >= 10


class TestForumAndScraper:
    @pytest.fixture(scope="class")
    def forum(self, dataset):
        return SimulatedForum.populate(list(dataset), seed=7)

    def test_raw_pool_size(self, forum):
        assert len(forum) == 2000

    def test_junk_profile_total(self):
        assert JunkProfile().total == 580

    def test_boards_cover_categories(self, forum):
        total = sum(len(forum.board(c)) for c in forum.categories)
        assert total == 2000

    def test_render_parse_roundtrip(self, forum):
        scraped = scrape_forum(forum)
        original = {(p.post_id, p.text, p.category) for p in forum.posts}
        recovered = {(p.post_id, p.text, p.category) for p in scraped}
        assert original == recovered

    def test_scrape_board_handles_escaping(self):
        html_page = (
            '<section class="board" data-category="Anxiety">'
            '<article class="forum-post" data-post-id="x1">'
            '<div class="post-body">a &amp; b &lt;tag&gt;</div>'
            "</article></section>"
        )
        posts = scrape_board(html_page)
        assert posts[0].text == "a & b <tag>"

    def test_funnel_counts(self, forum):
        clean, report = preprocess(scrape_forum(forum))
        assert report.raw == 2000
        assert report.removed_empty == 120
        assert report.removed_duplicates == 180
        assert report.removed_overlong == 130
        assert report.removed_offtopic == 150
        assert report.after_topic_filter == 1420
        assert len(clean) == 1420

    def test_funnel_recovers_gold_texts(self, forum, dataset):
        clean, _ = preprocess(scrape_forum(forum))
        assert {p.text for p in clean} == {i.text for i in dataset}

    def test_funnel_stage_order(self, forum):
        _, report = preprocess(scrape_forum(forum))
        counts = [count for _, count in report.stages()]
        assert counts == sorted(counts, reverse=True)


class TestOnTopic:
    def test_distress_text_on_topic(self):
        assert is_on_topic("my anxiety keeps me awake")

    def test_smalltalk_off_topic(self):
        assert not is_on_topic("lovely weather in brisbane this weekend")

    def test_empty_off_topic(self):
        assert not is_on_topic("")
