"""Fuzz-style protocol tests: hostile bytes must map to typed 4xx.

Every malformed input here — truncated bodies, invalid UTF-8, JSON
bombs, oversized payloads — must surface as a *typed* client error
(400/411/413 with an ``{"error": {...}}`` body), never a 500 and never
a hang.  Exercised both at the parser level and over a real HTTP
socket, and after every hostile request the gateway must still answer
a well-formed one.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.serving.protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    parse_predict_batch_request,
    parse_predict_request,
)
from tests.test_serving_http import gateway_over

GARBAGE_BODIES = [
    b"",
    b"not json at all",
    b"\xff\xfe\xfd{",  # invalid UTF-8
    b'{"text": "unterminated',
    b"[1, 2, 3]",  # valid JSON, wrong top-level type
    b'"just a string"',
    b"42",
    b"null",
    b"{" * 5000,
    b'{"text": }',
]


class TestParserFuzz:
    @pytest.mark.parametrize("raw", GARBAGE_BODIES, ids=range(len(GARBAGE_BODIES)))
    def test_garbage_bodies_raise_typed_4xx(self, raw):
        for parse in (parse_predict_request, parse_predict_batch_request):
            with pytest.raises(ProtocolError) as excinfo:
                parse(raw)
            assert 400 <= excinfo.value.status < 500
            assert excinfo.value.code in {"bad_json", "bad_request"}

    def test_deeply_nested_json_is_400_not_recursion_error(self):
        # Without the explicit RecursionError guard this escapes
        # json.loads as an interpreter-level error and becomes a 500.
        bomb = b"[" * 100_000
        assert len(bomb) < MAX_BODY_BYTES
        with pytest.raises(ProtocolError) as excinfo:
            parse_predict_request(bomb)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_json"

    def test_deeply_nested_object_values_also_guarded(self):
        bomb = b'{"text": ' + b"[" * 50_000
        with pytest.raises(ProtocolError) as excinfo:
            parse_predict_request(bomb)
        assert excinfo.value.status == 400

    def test_oversized_body_is_413(self):
        raw = b'{"text": "' + b"a" * MAX_BODY_BYTES + b'"}'
        with pytest.raises(ProtocolError) as excinfo:
            parse_predict_request(raw)
        assert excinfo.value.status == 413
        assert excinfo.value.code == "payload_too_large"

    def test_wrong_field_types_are_400(self):
        cases = [
            b'{"text": 42}',
            b'{"text": null}',
            b'{"text": ["a"]}',
            b'{"text": "   "}',
            b'{"text": "ok", "top_k": "three"}',
            b'{"text": "ok", "top_k": true}',
            b'{"text": "ok", "top_k": 0}',
            b'{"text": "ok", "top_k": 999}',
        ]
        for raw in cases:
            with pytest.raises(ProtocolError) as excinfo:
                parse_predict_request(raw)
            assert excinfo.value.status == 400

    def test_batch_field_fuzz_is_4xx(self):
        cases = [
            (b'{"texts": "not a list"}', 400),
            (b'{"texts": []}', 400),
            (b'{"texts": [1, 2]}', 400),
            (b'{"texts": ["ok", ""]}', 400),
            (b'{"texts": [' + b'"x",' * 300 + b'"x"]}', 413),
        ]
        for raw, status in cases:
            with pytest.raises(ProtocolError) as excinfo:
                parse_predict_batch_request(raw)
            assert excinfo.value.status == status


def _raw_exchange(url: str, request_bytes: bytes, *, timeout: float = 5.0) -> bytes:
    """Send raw bytes over a fresh socket; return whatever comes back."""
    host, _, port = url.removeprefix("http://").partition(":")
    with socket.create_connection((host, int(port)), timeout=timeout) as sock:
        sock.sendall(request_bytes)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def _post_status(url: str, path: str, body: bytes) -> tuple[int, dict]:
    request = urllib.request.Request(
        url + path,
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestGatewayFuzz:
    def test_hostile_bodies_never_500_and_server_survives(self):
        with gateway_over() as (gateway, _server):
            for raw in GARBAGE_BODIES + [b"[" * 100_000]:
                status, payload = _post_status(gateway.url, "/v1/predict", raw)
                assert 400 <= status < 500, (raw[:40], status, payload)
                assert payload["error"]["code"] in {"bad_json", "bad_request"}
            # The gateway is still healthy after the whole barrage.
            status, payload = _post_status(
                gateway.url, "/v1/predict", b'{"text": "still serving"}'
            )
            assert status == 200 and "label" in payload

    def test_oversized_body_rejected_at_header_stage(self):
        # The gateway answers 413 from the Content-Length header alone
        # and closes the connection without reading the body.  Whether
        # the client sees the 413 or a broken pipe depends on how much
        # of the oversized body fit into socket buffers before the
        # close — both prove the early rejection; a server that read
        # the whole body would instead return a parse error (or 200).
        with gateway_over() as (gateway, _server):
            raw = b'{"text": "' + b"a" * MAX_BODY_BYTES + b'"}'
            try:
                status, payload = _post_status(gateway.url, "/v1/predict", raw)
            except urllib.error.URLError as error:
                assert isinstance(error.reason, (BrokenPipeError, ConnectionError))
            else:
                assert status == 413
                assert payload["error"]["code"] == "payload_too_large"
            # Either way the server must still be serving.
            status, payload = _post_status(
                gateway.url, "/v1/predict", b'{"text": "still serving"}'
            )
            assert status == 200 and "label" in payload

    def test_missing_content_length_is_411(self):
        with gateway_over() as (gateway, _server):
            response = _raw_exchange(
                gateway.url,
                b"POST /v1/predict HTTP/1.1\r\n"
                b"Host: x\r\nConnection: close\r\n\r\n",
            )
            assert b" 411 " in response.splitlines()[0]

    def test_truncated_body_is_400_not_hang(self):
        # Content-Length promises 100 bytes, the client sends 10 and
        # half-closes.  The short read must parse-fail into a 400, not
        # block the handler thread forever.
        with gateway_over() as (gateway, _server):
            response = _raw_exchange(
                gateway.url,
                b"POST /v1/predict HTTP/1.1\r\n"
                b"Host: x\r\nContent-Type: application/json\r\n"
                b"Content-Length: 100\r\nConnection: close\r\n\r\n"
                b'{"text": "',
            )
            assert b" 400 " in response.splitlines()[0]

    def test_absurd_content_length_values(self):
        with gateway_over() as (gateway, _server):
            for value in (b"-1", b"nan", b"1e9", b"99999999999999999999"):
                response = _raw_exchange(
                    gateway.url,
                    b"POST /v1/predict HTTP/1.1\r\n"
                    b"Host: x\r\nContent-Length: " + value + b"\r\n"
                    b"Connection: close\r\n\r\nx",
                )
                status_line = response.splitlines()[0] if response else b""
                assert b" 400 " in status_line or b" 413 " in status_line, (
                    value,
                    status_line,
                )
