"""Tier-1 test suite (package so module basenames never clash with benchmarks/)."""
