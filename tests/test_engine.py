"""Tests for the engine subsystem: registry, PredictionEngine, persistence, server."""

import numpy as np
import pytest

from repro.core.labels import DIMENSIONS
from repro.core.pipeline import (
    TRADITIONAL_BASELINES,
    TRANSFORMER_BASELINES,
    WellnessClassifier,
)
from repro.engine.engine import (
    PredictionEngine,
    bump_weights_version,
    softmax_rows,
    weights_version,
)
from repro.engine.registry import (
    BaselineSpec,
    available_baselines,
    create_traditional_model,
    get_spec,
    register,
    traditional_baselines,
    transformer_baselines,
    transformer_class,
)
from repro.engine.server import InferenceServer
from repro.models.classifier import TransformerClassifier


@pytest.fixture(scope="module")
def fitted_lr(small_dataset):
    return WellnessClassifier("LR").fit(small_dataset)


@pytest.fixture(scope="module")
def fitted_transformer(small_dataset):
    return WellnessClassifier("DistilBERT", fast=True).fit(small_dataset)


class TestRegistry:
    def test_all_nine_baselines_resolvable(self):
        names = available_baselines()
        assert set(names) == {
            "LR", "Linear SVM", "Gaussian NB",
            "BERT", "DistilBERT", "MentalBERT", "Flan-T5", "XLNet", "GPT-2.0",
        }
        for name in names:
            spec = get_spec(name)
            assert spec.name == name
            assert spec.kind in ("traditional", "transformer")

    def test_partition_matches_pipeline_constants(self):
        assert traditional_baselines() == TRADITIONAL_BASELINES
        assert transformer_baselines() == TRANSFORMER_BASELINES
        assert len(traditional_baselines()) == 3
        assert len(transformer_baselines()) == 6

    def test_traditional_factories_produce_fittable_models(self):
        for name in traditional_baselines():
            model = create_traditional_model(name, seed=3)
            assert hasattr(model, "fit") and hasattr(model, "predict")

    def test_transformer_specs_carry_paper_configs(self):
        from repro.models.config import MODEL_CONFIGS

        for name in transformer_baselines():
            assert get_spec(name).config == MODEL_CONFIGS[name]

    def test_transformer_classes_retain_public_names(self):
        expected = {
            "BERT": "BertClassifier",
            "DistilBERT": "DistilBertClassifier",
            "MentalBERT": "MentalBertClassifier",
            "Flan-T5": "FlanT5Classifier",
            "XLNet": "XLNetClassifier",
            "GPT-2.0": "Gpt2Classifier",
        }
        for name, class_name in expected.items():
            cls = transformer_class(name)
            assert cls.__name__ == class_name
            assert issubclass(cls, TransformerClassifier)
            assert cls.BASELINE == name

    def test_wrapper_modules_reexport_registry_classes(self):
        import repro.models as models

        assert models.BertClassifier is transformer_class("BERT")
        assert models.Gpt2Classifier is transformer_class("GPT-2.0")

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError, match="unknown baseline"):
            get_spec("RoBERTa")
        with pytest.raises(ValueError):
            WellnessClassifier("RoBERTa")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(
                BaselineSpec(
                    name="LR",
                    kind="traditional",
                    description="dup",
                    factory=lambda seed: None,
                )
            )

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError):
            create_traditional_model("BERT")
        with pytest.raises(ValueError):
            transformer_class("LR")


class TestPredictionCache:
    def test_repeated_texts_hit_cache(self, fitted_lr, small_dataset):
        engine = fitted_lr.engine
        engine.invalidate()
        start_hits = engine.stats.cache_hits
        start_misses = engine.stats.cache_misses
        texts = small_dataset.texts[:8]
        first = engine.predict_proba(texts)
        assert engine.stats.cache_misses == start_misses + 8
        second = engine.predict_proba(texts)
        assert engine.stats.cache_hits == start_hits + 8
        np.testing.assert_array_equal(first, second)

    def test_duplicates_within_one_call_computed_once(self, fitted_lr):
        engine = fitted_lr.engine
        engine.invalidate()
        misses_before = engine.stats.cache_misses
        probs = engine.predict_proba(["i feel alone"] * 5)
        assert engine.stats.cache_misses == misses_before + 1
        assert probs.shape == (5, 6)
        assert np.ptp(probs, axis=0).max() == 0.0  # identical rows

    def test_invalidate_clears_cache(self, fitted_lr):
        engine = fitted_lr.engine
        engine.predict_proba(["some text"])
        assert len(engine) > 0
        engine.invalidate()
        assert len(engine) == 0

    def test_lru_eviction_respects_capacity(self, fitted_lr):
        engine = PredictionEngine(
            fitted_lr.engine.backend, model_id="tiny", cache_size=2
        )
        engine.predict_proba(["a", "b", "c"])
        assert len(engine) == 2

    def test_replicate_shares_backend_with_private_cache(self, fitted_lr):
        engine = fitted_lr.engine
        replica = engine.replicate()
        assert replica.backend is engine.backend
        assert replica.model_id == engine.model_id
        replica.predict_proba(["replica only"])
        assert len(replica) == 1
        # The template engine's cache and stats are untouched.
        assert ("replica only" not in {k[-1] for k in engine._cache})

    def test_trainer_cache_invalidated_between_epochs(self, small_dataset):
        # Validation accuracy is computed via the engine after each epoch;
        # a stale cache would freeze it at the epoch-1 value.
        clf = WellnessClassifier("DistilBERT", fast=True)
        clf.fit(small_dataset, validation=small_dataset)
        trainer = clf._trainer
        assert trainer.result.val_accuracies  # engine served mid-training


class TestVersionedCache:
    """Weight changes must auto-invalidate cached predictions.

    Regression tests for the stale-cache-after-reload bug: the cache
    used to key on ``(model_id, text)`` only, so restoring a checkpoint
    into (or re-fitting) a model an engine already wrapped kept serving
    probabilities computed with the old weights.
    """

    def test_weights_version_helpers(self):
        class Anything:
            pass

        model = Anything()
        assert weights_version(model) == 0
        assert bump_weights_version(model) == 1
        assert bump_weights_version(model) == 2
        assert weights_version(model) == 2

    def test_transformer_load_state_dict_invalidates_cache(
        self, fitted_transformer, small_dataset
    ):
        model = fitted_transformer._model
        engine = PredictionEngine.for_transformer(model, model_id="versioned")
        text = small_dataset.texts[0]
        original_state = model.state_dict()
        try:
            before = engine.predict_proba([text]).copy()
            assert engine.stats.cache_misses == 1
            perturbed = dict(original_state)
            bias = original_state["classifier.bias"].copy()
            bias[0] += 3.0  # asymmetric: softmax is shift-invariant
            perturbed["classifier.bias"] = bias
            model.load_state_dict(perturbed)
            after = engine.predict_proba([text])
            # Pre-fix this was a cache hit returning `before` verbatim.
            assert engine.stats.cache_misses == 2
            assert not np.allclose(before, after)
        finally:
            model.load_state_dict(original_state)

    def test_traditional_restore_array_state_invalidates_cache(
        self, fitted_lr, small_dataset
    ):
        from repro.nn.serialization import collect_array_state, restore_array_state

        model = fitted_lr._model
        engine = PredictionEngine.for_traditional(
            fitted_lr._vectorizer, model, model_id="versioned-lr"
        )
        text = small_dataset.texts[0]
        original_state = collect_array_state(model)
        try:
            before = engine.predict_proba([text]).copy()
            perturbed = dict(original_state)
            intercept = np.array(original_state["intercept_"], dtype=np.float64)
            intercept[0] += 5.0  # asymmetric: softmax is shift-invariant
            perturbed["intercept_"] = intercept
            restore_array_state(model, perturbed)
            after = engine.predict_proba([text])
            assert engine.stats.cache_misses == 2
            assert not np.allclose(before, after)
        finally:
            restore_array_state(model, original_state)

    def test_classifier_fit_and_load_bump_version(self, small_dataset, tmp_path):
        clf = WellnessClassifier("LR").fit(small_dataset)
        assert weights_version(clf._model) >= 1
        clf.save(tmp_path / "ckpt")
        restored = WellnessClassifier.load(tmp_path / "ckpt")
        assert weights_version(restored._model) >= 1

    def test_version_bump_without_invalidate_recomputes(self, fitted_lr):
        engine = fitted_lr.engine.replicate()
        probs = engine.predict_proba(["same text"])
        bump_weights_version(fitted_lr._model)
        again = engine.predict_proba(["same text"])
        # Same weights in practice, but the bump must force a recompute.
        assert engine.stats.cache_misses == 2
        np.testing.assert_allclose(probs, again)


class TestBatchedInference:
    def test_bucketed_matches_old_per_path_code(self, fitted_transformer, small_dataset):
        """Length-bucketed engine inference == direct encode_batch path."""
        mixed = small_dataset.texts[:30] + [
            "short",
            "a deliberately much longer narrative with many words so the "
            "length buckets are exercised end to end today",
        ]
        engine = fitted_transformer.engine
        engine.invalidate()
        engine_labels = engine.predict(mixed)
        old_ids = fitted_transformer._model.predict(mixed)
        assert engine_labels == [DIMENSIONS[int(i)] for i in old_ids]

    def test_small_batch_size_still_correct(self, fitted_transformer, small_dataset):
        texts = small_dataset.texts[:12]
        reference = fitted_transformer.predict(texts)
        engine = PredictionEngine.for_transformer(
            fitted_transformer._model, model_id="small-batches", batch_size=4
        )
        assert engine.predict(texts) == reference
        assert engine.stats.batches == 3

    def test_padding_accounting(self, fitted_transformer):
        engine = PredictionEngine.for_transformer(
            fitted_transformer._model, model_id="padding", batch_size=2
        )
        engine.predict_proba(
            ["one", "two words here", "now a considerably longer sentence "
             "with very many more words than the others"]
        )
        assert engine.stats.padded_tokens <= engine.stats.padded_tokens_naive

    def test_softmax_rows_normalised(self):
        probs = softmax_rows(np.array([[1.0, 2.0, 3.0], [100.0, 100.0, 100.0]]))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-12)


class TestPersistenceRoundTrip:
    @pytest.mark.parametrize("baseline", ["LR", "Gaussian NB", "Linear SVM"])
    def test_traditional_round_trip(self, small_dataset, tmp_path, baseline):
        clf = WellnessClassifier(baseline).fit(small_dataset)
        texts = small_dataset.texts[:20]
        expected = clf.predict(texts)
        expected_probs = clf.predict_proba(texts)
        clf.save(tmp_path / "ckpt")
        restored = WellnessClassifier.load(tmp_path / "ckpt")
        assert restored.baseline == baseline
        assert restored.predict(texts) == expected
        np.testing.assert_allclose(
            restored.predict_proba(texts), expected_probs, rtol=1e-10
        )

    def test_transformer_round_trip(self, fitted_transformer, small_dataset, tmp_path):
        clf = fitted_transformer
        texts = small_dataset.texts[:20]
        expected = clf.predict(texts)
        clf.save(tmp_path / "ckpt")
        restored = WellnessClassifier.load(tmp_path / "ckpt")
        assert restored.is_transformer
        assert restored.predict(texts) == expected
        np.testing.assert_allclose(
            restored.predict_proba(texts), clf.predict_proba(texts), atol=1e-6
        )

    def test_checkpoint_layout(self, fitted_lr, tmp_path):
        target = fitted_lr.save(tmp_path / "ckpt")
        assert (target / "weights.npz").is_file()
        assert (target / "config.json").is_file()

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            WellnessClassifier("LR").save(tmp_path / "nope")

    def test_load_rejects_non_checkpoint(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            WellnessClassifier.load(tmp_path / "missing")

    def test_unfitted_predict_rejected(self):
        with pytest.raises(RuntimeError, match="fitted"):
            WellnessClassifier("LR").predict(["hello"])


class TestInferenceServer:
    def test_serves_same_labels_as_direct_predict(self, fitted_lr, small_dataset):
        texts = small_dataset.texts[:40]
        direct = fitted_lr.predict(texts)
        server = InferenceServer(fitted_lr.engine, max_batch_size=8)
        with server:
            results = server.predict(texts)
        assert [r.label for r in results] == direct
        assert server.stats.requests == len(texts)
        assert 1 <= server.stats.batches <= len(texts)
        assert server.stats.mean_latency_ms >= 0.0

    def test_submit_requires_running_server(self, fitted_lr):
        server = InferenceServer(fitted_lr.engine)
        with pytest.raises(RuntimeError):
            server.submit("hello")

    def test_stop_drains_pending_requests(self, fitted_lr):
        server = InferenceServer(fitted_lr.engine, max_batch_size=4)
        server.start()
        futures = [server.submit(f"text number {i}") for i in range(10)]
        server.stop()
        for future in futures:
            assert future.result(timeout=5).label in DIMENSIONS

    def test_concurrent_transformer_serving_preserves_grad_mode(
        self, fitted_transformer, small_dataset
    ):
        # no_grad() toggles a process-global flag; unserialised worker
        # threads interleaving enter/exit could strand it False (training
        # would silently stop learning) or build tape mid-inference.
        # TransformerBackend serialises forwards to keep this invariant.
        from repro.nn.tensor import is_grad_enabled

        texts = small_dataset.texts[:24]
        direct = fitted_transformer.predict(texts)
        server = InferenceServer(
            fitted_transformer.engine, workers=3, max_batch_size=4
        )
        with server:
            results = server.predict(texts, timeout=60)
        assert [r.label for r in results] == direct
        assert is_grad_enabled()
        assert fitted_transformer._model.training  # eval/train restored

    def test_multi_worker_replicas_match_direct_predict(
        self, fitted_lr, small_dataset
    ):
        texts = small_dataset.texts[:40]
        direct = fitted_lr.predict(texts)
        server = InferenceServer(fitted_lr.engine, workers=4, max_batch_size=8)
        with server:
            results = server.predict(texts)
        assert [r.label for r in results] == direct
        snap = server.stats.snapshot()
        assert snap.requests == len(texts)
        assert sum(snap.per_worker_requests) == len(texts)
        assert server.engine_stats().requests == len(texts)
