"""Integration tests for the Table IV / Table V experiment harnesses.

The benches run the full protocols; these tests exercise the same
plumbing with cheap settings (traditional baselines only, tiny LIME)
so harness regressions surface in the fast suite.
"""

from dataclasses import replace

import pytest

from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.core.pipeline import WellnessClassifier
from repro.experiments.protocol import REDUCED
from repro.experiments.table4 import (
    TRADITIONAL_NAMES,
    format_table4,
    run_table4,
)
from repro.experiments.table5 import format_table5, run_table5


@pytest.fixture(scope="module")
def traditional_result(dataset):
    protocol = replace(REDUCED, n_folds=2)
    return run_table4(dataset, protocol=protocol, baselines=TRADITIONAL_NAMES)


class TestTable4Harness:
    def test_scores_for_each_baseline(self, traditional_result):
        assert set(traditional_result.scores) == set(TRADITIONAL_NAMES)
        for scores in traditional_result.scores.values():
            assert len(scores.fold_accuracies) == 2
            assert 0.0 <= scores.accuracy <= 1.0
            assert set(scores.per_class) == set(DIMENSIONS)

    def test_accuracy_is_fold_mean(self, traditional_result):
        for scores in traditional_result.scores.values():
            mean = sum(scores.fold_accuracies) / len(scores.fold_accuracies)
            assert scores.accuracy == pytest.approx(mean)

    def test_gnb_worst_among_traditional(self, traditional_result):
        acc = {n: s.accuracy for n, s in traditional_result.scores.items()}
        assert acc["Gaussian NB"] == min(acc.values())

    def test_hard_classes_ordering(self, traditional_result):
        lr = traditional_result.scores["LR"]
        ea_f1 = lr.per_class[WellnessDimension.EMOTIONAL][2]
        pa_f1 = lr.per_class[WellnessDimension.PHYSICAL][2]
        assert pa_f1 > ea_f1

    def test_format_includes_paper_rows(self, traditional_result):
        text = format_table4(traditional_result)
        assert "(paper)" in text
        assert "LR" in text
        assert "Acc" in text

    def test_unknown_baseline_rejected(self, dataset):
        with pytest.raises(ValueError, match="unknown baseline"):
            run_table4(dataset, baselines=["RoBERTa"])


class TestTable5Harness:
    def test_with_prefitted_classifiers(self, dataset):
        protocol = replace(REDUCED, lime_posts=4, lime_samples=60)
        split = dataset.fixed_split()
        classifiers = {
            "LR": WellnessClassifier("LR").fit(split.train),
        }
        result = run_table5(
            dataset, protocol=protocol, classifiers=classifiers
        )
        assert result.n_posts == 4
        assert set(result.scores) == {"LR"}
        similarity = result.scores["LR"]
        for value in (
            similarity.f1,
            similarity.precision,
            similarity.recall,
            similarity.rouge,
            similarity.bleu,
        ):
            assert 0.0 <= value <= 1.0

    def test_format_lists_metrics(self, dataset):
        protocol = replace(REDUCED, lime_posts=3, lime_samples=60)
        split = dataset.fixed_split()
        classifiers = {"LR": WellnessClassifier("LR").fit(split.train)}
        result = run_table5(dataset, protocol=protocol, classifiers=classifiers)
        text = format_table5(result)
        assert "F1-score" in text
        assert "ROUGE" in text
        assert "(paper)" in text
