"""End-to-end loopback tests for the HTTP serving gateway.

Every test boots a real ``ServingGateway`` (stdlib ThreadingHTTPServer)
on an ephemeral loopback port and drives it over actual sockets with
``ServingClient`` — covering byte-identical parity with the in-process
engine, request validation, 429 shed / 503 drain error mapping, client
retry + deadline semantics, Prometheus metrics consistency, and graceful
shutdown.  Stub backends keep the model cost at microseconds; one test
serves a real fitted LR baseline for whole-stack parity.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import numpy as np
import pytest

from repro.engine.engine import PredictionEngine
from repro.engine.server import InferenceServer
from repro.serving.client import (
    GatewayOverloaded,
    GatewayUnavailable,
    ServingClient,
    ServingError,
)
from repro.serving.gateway import ServingGateway
from repro.serving.metrics import parse_metrics
from repro.serving.protocol import MAX_BATCH_TEXTS


class DeterministicBackend:
    """Probabilities as a pure function of the text — the parity oracle."""

    n_classes = 6

    def proba_batch(self, texts: list[str]) -> np.ndarray:
        rows = np.empty((len(texts), 6), dtype=np.float64)
        for i, text in enumerate(texts):
            digest = hashlib.sha256(text.encode("utf-8")).digest()
            vals = np.frombuffer(digest[:6], dtype=np.uint8).astype(np.float64) + 1.0
            rows[i] = vals / vals.sum()
        return rows


class SlowBackend(DeterministicBackend):
    def __init__(self, delay_s: float) -> None:
        self.delay_s = delay_s

    def proba_batch(self, texts: list[str]) -> np.ndarray:
        time.sleep(self.delay_s)
        return super().proba_batch(texts)


def make_engine(backend=None, **kwargs) -> PredictionEngine:
    return PredictionEngine(
        backend or DeterministicBackend(), model_id="stub", **kwargs
    )


@contextmanager
def gateway_over(
    backend=None,
    *,
    request_timeout_s: float = 30.0,
    admin_token: str | None = None,
    **server_kwargs,
):
    server = InferenceServer(make_engine(backend), **server_kwargs)
    gateway = ServingGateway(
        server, request_timeout_s=request_timeout_s, admin_token=admin_token
    )
    with gateway:
        yield gateway, server


class TestPredictParity:
    def test_predict_matches_in_process_engine_exactly(self):
        texts = [f"post {i} about wellbeing and work" for i in range(12)]
        oracle = make_engine().predict_proba(texts)
        with gateway_over() as (gateway, _):
            client = ServingClient(gateway.url, deadline_s=10)
            for text, expected in zip(texts, oracle):
                response = client.predict(text)
                assert response.model_id == "stub"
                assert response.served_by is not None
                assert response.served_by.model == "default"
                got = list(response.probabilities.values())
                # Byte-level parity: JSON round-trips repr(float), which
                # is exact, and the gateway replica runs the same code.
                assert got == [float(p) for p in expected]
                assert list(response.probabilities) == [
                    "IA", "VA", "SpiA", "PA", "SA", "EA",
                ]
                assert response.label == [
                    "IA", "VA", "SpiA", "PA", "SA", "EA",
                ][int(np.argmax(expected))]

    def test_predict_batch_matches_and_preserves_order(self):
        texts = [f"batch item {i}" for i in range(40)]
        oracle = make_engine().predict_proba(texts)
        with gateway_over() as (gateway, _):
            client = ServingClient(gateway.url, deadline_s=10)
            response = client.predict_batch(texts)
            assert len(response.predictions) == len(texts)
            for row, expected in zip(response.predictions, oracle):
                assert list(row.probabilities.values()) == [
                    float(p) for p in expected
                ]

    def test_top_k_is_ranked_and_truncated(self):
        with gateway_over() as (gateway, _):
            client = ServingClient(gateway.url, deadline_s=10)
            response = client.predict("rank these dimensions", top_k=3)
            assert response.probabilities is None
            ranked = response.top_k
            assert len(ranked) == 3
            probs = [entry["probability"] for entry in ranked]
            assert probs == sorted(probs, reverse=True)
            assert ranked[0]["label"] == response.label

    def test_real_lr_baseline_served_end_to_end(self, small_dataset):
        from repro.core.pipeline import WellnessClassifier

        instances = list(small_dataset)
        classifier = WellnessClassifier("LR").fit(instances[:100])
        texts = [inst.text for inst in instances[100:108]]
        expected = classifier.predict_proba(texts)
        server = InferenceServer(classifier.engine, workers=2)
        with ServingGateway(server, baseline="LR") as gateway:
            client = ServingClient(gateway.url, deadline_s=30)
            response = client.predict_batch(texts)
            for row, probs in zip(response.predictions, expected):
                assert list(row.probabilities.values()) == [
                    float(p) for p in probs
                ]
            models = client.models()
            loaded = [m["name"] for m in models["registry"] if m["loaded"]]
            assert loaded == ["LR"]
            assert len(models["registry"]) == 9
            assert models["default_model"] == "default"
            (entry,) = models["models"]
            assert entry["baseline"] == "LR"
            assert entry["state"] == "serving"
            assert entry["traffic_share"] == 1.0


class TestValidation:
    @pytest.fixture()
    def client(self):
        with gateway_over() as (gateway, _):
            yield ServingClient(gateway.url, deadline_s=5)

    def _status_and_code(self, excinfo) -> tuple[int, str]:
        return excinfo.value.status, excinfo.value.code

    def test_invalid_json_is_400(self, client):
        request = urllib.request.Request(
            client.base_url + "/v1/predict",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["error"]["code"] == "bad_json"

    def test_missing_and_empty_text(self, client):
        with pytest.raises(ServingError) as excinfo:
            client.predict("")
        assert self._status_and_code(excinfo) == (400, "bad_request")
        request = urllib.request.Request(
            client.base_url + "/v1/predict",
            data=json.dumps({"post": "x"}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_top_k_bounds(self, client):
        for bad in (0, 7, -1):
            with pytest.raises(ServingError) as excinfo:
                client.predict("hello", top_k=bad)
            assert self._status_and_code(excinfo) == (400, "bad_request")

    def test_batch_must_be_nonempty_list_of_strings(self, client):
        with pytest.raises(ServingError) as excinfo:
            client.predict_batch([])
        assert self._status_and_code(excinfo) == (400, "bad_request")
        with pytest.raises(ServingError) as excinfo:
            client.predict_batch(["ok", 5])  # type: ignore[list-item]
        assert self._status_and_code(excinfo) == (400, "bad_request")

    def test_oversized_batch_is_413(self, client):
        with pytest.raises(ServingError) as excinfo:
            client.predict_batch(["x"] * (MAX_BATCH_TEXTS + 1))
        assert self._status_and_code(excinfo) == (413, "payload_too_large")

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServingError) as excinfo:
            client._call("GET", "/v1/nope", None, 5)
        assert self._status_and_code(excinfo) == (404, "not_found")

    def test_missing_content_length_is_411(self, client):
        host, port = client.base_url.removeprefix("http://").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=5)
        try:
            conn.putrequest("POST", "/v1/predict", skip_accept_encoding=True)
            conn.putheader("Content-Type", "application/json")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 411
            assert json.loads(response.read())["error"]["code"] == "length_required"
        finally:
            conn.close()


class TestBackpressureAndErrors:
    def test_shed_maps_to_429_with_retry_after(self):
        with gateway_over(
            SlowBackend(0.05),
            workers=1,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=1,
            overload="shed",
        ) as (gateway, _):
            url = gateway.url + "/v1/predict"
            statuses: list[int] = []
            retry_after: list[str | None] = []

            def hammer(i: int) -> None:
                request = urllib.request.Request(
                    url,
                    data=json.dumps({"text": f"req {i}"}).encode(),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                try:
                    with urllib.request.urlopen(request, timeout=30) as resp:
                        statuses.append(resp.status)
                except urllib.error.HTTPError as error:
                    statuses.append(error.code)
                    retry_after.append(error.headers.get("Retry-After"))
                    error.read()

            threads = [
                threading.Thread(target=hammer, args=(i,)) for i in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert 429 in statuses, statuses
            assert 200 in statuses, statuses
            assert all(value == "1" for value in retry_after)
            snapshot = gateway.server.stats.snapshot()
            assert snapshot.shed == statuses.count(429)

    def test_client_retries_429_until_capacity(self):
        with gateway_over(
            SlowBackend(0.02),
            workers=1,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=1,
            overload="shed",
        ) as (gateway, _):
            client = ServingClient(
                gateway.url, deadline_s=30, retry_base_s=0.01, retry_max_s=0.05
            )
            results = []
            threads = [
                threading.Thread(
                    target=lambda i=i: results.append(client.predict(f"r {i}"))
                )
                for i in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # Every client eventually got served despite shed rejections.
            assert len(results) == 12
            assert all(r.label for r in results)

    def test_client_deadline_raises_overloaded(self):
        with gateway_over(
            SlowBackend(0.5),
            workers=1,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=1,
            overload="shed",
        ) as (gateway, server):
            # Occupy the only worker for 0.5 s and fill the queue via
            # the in-process API, so every HTTP attempt inside the
            # client's 0.3 s deadline deterministically sheds.
            first = server.submit("occupy the worker")
            time.sleep(0.05)  # worker picks the first request up
            second = server.submit("fill the queue")
            client = ServingClient(
                gateway.url, deadline_s=0.3, retry_base_s=0.02, retry_max_s=0.05
            )
            started = time.monotonic()
            with pytest.raises(GatewayOverloaded):
                client.predict("impatient")
            assert time.monotonic() - started < 2.0
            assert first.result(timeout=10).label
            assert second.result(timeout=10).label

    def test_engine_timeout_maps_to_504(self):
        with gateway_over(
            SlowBackend(0.5), request_timeout_s=0.05, workers=1
        ) as (gateway, _):
            client = ServingClient(gateway.url, deadline_s=10)
            with pytest.raises(ServingError) as excinfo:
                client.predict("too slow")
            assert excinfo.value.status == 504
            assert excinfo.value.code == "deadline_exceeded"


class TestRetryJitter:
    """Backoff jitter: desynchronise a shed herd without losing retries."""

    def test_jitter_zero_reproduces_deterministic_schedule(self):
        client = ServingClient(
            "http://127.0.0.1:1",
            retry_base_s=0.05,
            retry_max_s=2.0,
            retry_jitter=0.0,
        )
        for attempt in range(8):
            expected = min(2.0, 0.05 * 2**attempt)
            assert client._backoff_s(attempt, None) == expected
        # The server's Retry-After hint is honoured exactly too.
        assert client._backoff_s(0, "1.5") == 1.5
        assert client._backoff_s(0, "10") == 2.0  # capped

    def test_jitter_bounded_and_seed_reproducible(self):
        def draws(seed: int) -> list[float]:
            client = ServingClient(
                "http://127.0.0.1:1",
                retry_base_s=0.05,
                retry_max_s=2.0,
                retry_jitter=0.5,
                retry_seed=seed,
            )
            return [client._backoff_s(a % 6, None) for a in range(50)]

        first = draws(42)
        for a, value in enumerate(first):
            full = min(2.0, 0.05 * 2 ** (a % 6))
            assert 0.5 * full <= value <= full
        assert first == draws(42)  # seeded: reproducible
        assert first != draws(43)  # distinct clients decorrelate

    def test_unseeded_clients_do_not_retry_in_lockstep(self):
        # The herd case: every client gets the same Retry-After hint,
        # but their jittered sleeps must differ.
        a = ServingClient("http://127.0.0.1:1", retry_jitter=0.5)
        b = ServingClient("http://127.0.0.1:1", retry_jitter=0.5)
        assert [a._backoff_s(0, "1") for _ in range(20)] != [
            b._backoff_s(0, "1") for _ in range(20)
        ]

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            ServingClient("http://127.0.0.1:1", retry_jitter=1.5)

    def test_many_jittered_clients_all_survive_a_shedding_server(self):
        """The regression this feature exists for: a herd of clients
        against an undersized shed-mode server must all eventually get
        served — sheds happen, retries (jittered, per-client RNG) drain
        the herd within every client's deadline.
        """
        with gateway_over(
            SlowBackend(0.02),
            workers=1,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=1,
            overload="shed",
        ) as (gateway, _):
            results: list[dict] = []
            errors: list[Exception] = []
            lock = threading.Lock()

            def one_client(i: int) -> None:
                client = ServingClient(
                    gateway.url,
                    deadline_s=30,
                    retry_base_s=0.01,
                    retry_max_s=0.05,
                    retry_jitter=0.5,
                    retry_seed=i,
                )
                try:
                    response = client.predict(f"herd member {i}")
                    with lock:
                        results.append(response)
                except Exception as error:  # noqa: BLE001 - asserted below
                    with lock:
                        errors.append(error)

            threads = [
                threading.Thread(target=one_client, args=(i,)) for i in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors
            assert len(results) == 16
            assert all(r.label for r in results)
            # The server really shed under this herd — the retries were
            # load-bearing, not decorative.
            assert gateway.server.stats.snapshot().shed > 0


class TestLifecycle:
    def test_healthz_flips_to_503_after_drain(self):
        with gateway_over() as (gateway, server):
            client = ServingClient(gateway.url, deadline_s=5)
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["workers"] == server.workers
            server.drain()
            with pytest.raises(GatewayUnavailable):
                client.healthz()
            with pytest.raises(GatewayUnavailable) as excinfo:
                client.predict("after drain")
            assert excinfo.value.code == "unavailable"

    def test_predict_after_server_stop_is_503(self):
        with gateway_over() as (gateway, server):
            client = ServingClient(gateway.url, deadline_s=5)
            assert client.predict("warm").label
            server.stop()
            with pytest.raises(GatewayUnavailable) as excinfo:
                client.predict("cold")
            assert excinfo.value.status == 503

    def test_stop_finishes_in_flight_requests(self):
        server = InferenceServer(
            make_engine(SlowBackend(0.1)), workers=1, max_batch_size=1
        )
        gateway = ServingGateway(server).start()
        client = ServingClient(gateway.url, deadline_s=30)
        results: list[dict] = []
        thread = threading.Thread(
            target=lambda: results.append(client.predict("in flight"))
        )
        thread.start()
        time.sleep(0.03)  # request is admitted and being served
        gateway.stop()
        thread.join(timeout=10)
        assert results and results[0].label
        assert not server.running

    def test_stop_is_idempotent_and_port_closes(self):
        gateway_port: int
        with gateway_over() as (gateway, _):
            gateway_port = gateway.port
            client = ServingClient(gateway.url, deadline_s=5)
            client.predict("ping")
        gateway.stop()  # second stop: no-op
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(
                f"http://127.0.0.1:{gateway_port}/healthz", timeout=2
            )

    def test_stop_leaves_caller_managed_server_untouched(self):
        # A server the caller started is not the gateway's to drain:
        # after gateway.stop() it must still accept and serve, and a
        # fresh gateway over it must become ready again.
        server = InferenceServer(make_engine(), workers=1).start()
        try:
            with ServingGateway(server) as gateway:
                ServingClient(gateway.url, deadline_s=5).predict("via http")
            assert server.running and server.accepting
            assert server.submit("still in-process").result(timeout=10).label
            with ServingGateway(server) as gateway:
                health = ServingClient(gateway.url, deadline_s=5).healthz()
                assert health["status"] == "ok"
        finally:
            server.stop()

    def test_ephemeral_ports_do_not_collide(self):
        with gateway_over() as (first, _), gateway_over() as (second, _):
            assert first.port != second.port
            assert ServingClient(first.url).healthz()["status"] == "ok"
            assert ServingClient(second.url).healthz()["status"] == "ok"


class TestMetrics:
    def test_metrics_parse_and_match_request_counts(self):
        with gateway_over(workers=2) as (gateway, server):
            client = ServingClient(gateway.url, deadline_s=10)
            n_single, batch_sizes = 7, [3, 5]
            for i in range(n_single):
                client.predict(f"single {i}")
            for size in batch_sizes:
                client.predict_batch([f"batch {size} item {j}" for j in range(size)])
            text = client.metrics_text()
            samples = parse_metrics(text)  # raises on malformed lines

            def value(name: str, **labels: str) -> float:
                return samples[(name, frozenset(labels.items()))]

            total_texts = n_single + sum(batch_sizes)
            assert value(
                "holistix_http_requests_total",
                endpoint="/v1/predict",
                status="200",
            ) == n_single
            assert value(
                "holistix_http_requests_total",
                endpoint="/v1/predict_batch",
                status="200",
            ) == len(batch_sizes)
            assert value("holistix_server_requests_total") == total_texts
            assert value("holistix_server_latency_ms_count") == total_texts
            per_worker = [
                value("holistix_worker_requests_total", worker=str(i))
                for i in range(server.workers)
            ]
            assert sum(per_worker) == total_texts
            assert value("holistix_ready", model_id="stub") == 1
            for q in ("0.5", "0.95", "0.99"):
                assert value("holistix_server_latency_ms", quantile=q) >= 0.0
            # All unique texts -> all cache misses so far.  Repeats of
            # one text may land on either replica; after 4 repeats at
            # most 2 are first-touch misses, so hits must appear.
            assert value("holistix_engine_cache_hit_rate") == 0.0
            for _ in range(4):
                client.predict("single 0")
            hits = ServingClient(gateway.url).metrics()[
                ("holistix_engine_cache_hits_total", frozenset())
            ]
            assert hits >= 2

    def test_label_values_with_commas_and_quotes_round_trip(self):
        from repro.engine.engine import EngineStats
        from repro.serving.metrics import render_metrics

        tricky = 'LR@my,check"point\\v1'
        server = InferenceServer(make_engine())
        with server:
            text = render_metrics(
                server.stats.snapshot(),
                EngineStats(),
                {},
                ready=True,
                model_id=tricky,
            )
        samples = parse_metrics(text)
        assert samples[("holistix_ready", frozenset({("model_id", tricky)}))] == 1

    def test_shed_counter_and_ready_gauge(self):
        with gateway_over(
            SlowBackend(0.1),
            workers=1,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=1,
            overload="shed",
        ) as (gateway, server):
            client = ServingClient(gateway.url, deadline_s=10)
            statuses = []

            def fire(i: int) -> None:
                # No retries: each HTTP 429 is exactly one shed on the
                # server side, so the counters can be compared.
                try:
                    client.predict(f"s {i}", retry_on_overload=False)
                    statuses.append(200)
                except GatewayOverloaded:
                    statuses.append(429)

            threads = [threading.Thread(target=fire, args=(i,)) for i in range(10)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            shed = statuses.count(429)
            samples = client.metrics()
            assert samples[("holistix_server_shed_total", frozenset())] == shed
            expected_rate = shed / len(statuses) if statuses else 0.0
            assert samples[("holistix_server_shed_rate", frozenset())] == (
                pytest.approx(expected_rate)
            )
            server.drain()
            samples = client.metrics()
            assert samples[("holistix_ready", frozenset({("model_id", "stub")}))] == 0
