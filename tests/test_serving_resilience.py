"""Resilience-primitive tests: client breaker/budget, deadline
propagation, chaos HTTP faults, and the admin surface.

Client-side mechanics (circuit breaker, retry budget, Retry-After
hardening, transport retries) are tested against a scripted transport;
deadline shedding, fault application, and the admin endpoints run over
a real loopback gateway.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.chaos import FaultEvent, FaultPlan
from repro.serving.client import (
    CircuitOpen,
    GatewayUnavailable,
    ServingClient,
    ServingError,
)
from tests.test_serving_http import SlowBackend, gateway_over


def make_client(**kwargs) -> ServingClient:
    defaults = dict(
        deadline_s=5.0,
        retry_base_s=0.001,
        retry_max_s=0.01,
        retry_jitter=0.0,
        retry_seed=0,
    )
    defaults.update(kwargs)
    return ServingClient("http://127.0.0.1:1", **defaults)


class ScriptedTransport:
    """Replaces ``ServingClient._request_full`` with a canned sequence.

    Each step is either an exception instance (raised) or a
    ``(status, body_bytes, headers)`` tuple.  The last step repeats
    forever; every call's ``extra_headers`` is recorded.
    """

    def __init__(self, steps) -> None:
        self.steps = list(steps)
        self.calls = 0
        self.seen_headers: list[dict | None] = []

    def __call__(self, method, path, body, timeout_s, *, extra_headers=None):
        self.seen_headers.append(extra_headers)
        step = self.steps[min(self.calls, len(self.steps) - 1)]
        self.calls += 1
        if isinstance(step, Exception):
            raise step
        return step


def ok_response(payload=None):
    body = json.dumps(payload or {"label": "IA", "latency_ms": 1.0}).encode()
    return (200, body, {})


def error_response(status, code, retry_after=None):
    body = json.dumps({"error": {"code": code, "message": code}}).encode()
    headers = {} if retry_after is None else {"Retry-After": retry_after}
    return (status, body, headers)


class TestRetryAfterHardening:
    @pytest.mark.parametrize(
        "hint",
        ["nan", "inf", "-inf", "abc", "", " ", "1e400", "-5", "1e308", "9" * 40],
    )
    def test_garbage_hints_clamp_to_cap_and_never_raise(self, hint):
        client = make_client(retry_max_s=0.25)
        backoff = client._backoff_s(0, hint)
        assert 0.0 <= backoff <= 0.25

    def test_valid_hint_honoured_but_capped(self):
        client = make_client(retry_max_s=0.25)
        assert client._backoff_s(0, "0.1") == pytest.approx(0.1)
        assert client._backoff_s(0, "100") == pytest.approx(0.25)
        assert client._backoff_s(0, "-1") == 0.0

    def test_garbage_hint_over_the_wire_does_not_stall_the_call(self):
        # A 429 carrying Retry-After: nan must back off by the capped
        # schedule, not sleep NaN (which would raise) or forever.
        transport = ScriptedTransport(
            [error_response(429, "overloaded", retry_after="nan"), ok_response()]
        )
        client = make_client()
        client._request_full = transport
        start = time.monotonic()
        assert client.predict("hello").label == "IA"
        assert time.monotonic() - start < 1.0
        assert transport.calls == 2


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        transport = ScriptedTransport([OSError("connection refused")])
        client = make_client(
            breaker_threshold=3, breaker_cooldown_s=60.0, retry_budget=0.0
        )
        client._request_full = transport
        for _ in range(3):
            with pytest.raises(OSError):
                client.predict("x")
        # Circuit now open: the next call never touches the transport.
        with pytest.raises(CircuitOpen) as excinfo:
            client.predict("x")
        assert excinfo.value.status == 503
        assert transport.calls == 3
        stats = client.stats()
        assert stats["breaker_state"] == "open"
        assert stats["breaker_opens"] == 1
        assert stats["breaker_rejections"] == 1

    def test_half_open_probe_closes_on_success(self):
        transport = ScriptedTransport([OSError("boom")])
        client = make_client(
            breaker_threshold=2, breaker_cooldown_s=0.05, retry_budget=0.0
        )
        client._request_full = transport
        for _ in range(2):
            with pytest.raises(OSError):
                client.predict("x")
        assert client.stats()["breaker_state"] == "open"
        time.sleep(0.06)
        transport.steps = [ok_response()]
        assert client.predict("x").label == "IA"
        assert client.stats()["breaker_state"] == "closed"

    def test_half_open_probe_failure_reopens(self):
        transport = ScriptedTransport([OSError("boom")])
        client = make_client(
            breaker_threshold=2, breaker_cooldown_s=0.05, retry_budget=0.0
        )
        client._request_full = transport
        for _ in range(2):
            with pytest.raises(OSError):
                client.predict("x")
        time.sleep(0.06)
        with pytest.raises(OSError):
            client.predict("x")  # the probe itself fails
        stats = client.stats()
        assert stats["breaker_state"] == "open"
        assert stats["breaker_opens"] == 2
        # And the fresh open enforces its own cooldown again.
        with pytest.raises(CircuitOpen):
            client.predict("x")

    def test_any_http_response_counts_as_transport_success(self):
        # A 4xx proves the transport path works; it must reset the
        # consecutive-failure streak even though the call raises.
        client = make_client(breaker_threshold=2, retry_budget=0.0)
        client._request_full = ScriptedTransport(
            [
                OSError("flake"),
                error_response(400, "bad_request"),
                OSError("flake"),
                error_response(400, "bad_request"),
            ]
        )
        for _ in range(2):
            with pytest.raises(OSError):
                client.predict("x")
            with pytest.raises(ServingError):
                client.predict("x")
        assert client.stats()["breaker_state"] == "closed"

    def test_breaker_does_not_gate_non_resilient_paths(self):
        client = make_client(retry_budget=0.0)
        client._request_full = ScriptedTransport([OSError("refused")])
        with pytest.raises(OSError):
            client.models()
        stats = client.stats()
        assert stats["transport_failures"] == 0
        assert stats["breaker_state"] == "closed"


class TestRetryBudget:
    def test_transport_retries_until_budget_exhausted(self):
        transport = ScriptedTransport([ConnectionResetError("reset")])
        client = make_client(retry_budget=3.0, breaker_threshold=100)
        client._request_full = transport
        with pytest.raises(ConnectionResetError):
            client.predict("x")
        # 1 initial attempt + 3 budgeted retries.
        assert transport.calls == 4
        stats = client.stats()
        assert stats["retries"] == 3
        assert stats["retry_budget_remaining"] == 0.0
        assert stats["retry_budget_exhausted"] == 1

    def test_successes_refund_credit_up_to_cap(self):
        transport = ScriptedTransport([ok_response()])
        client = make_client(retry_budget=2.0, retry_credit=0.5)
        client._request_full = transport
        client._tokens = 0.0
        for _ in range(10):
            client.predict("x")
        # Refunds cap at the configured budget, never above.
        assert client.stats()["retry_budget_remaining"] == 2.0

    def test_transient_flake_recovers_and_spends_one_token(self):
        transport = ScriptedTransport([OSError("flake"), ok_response()])
        client = make_client(retry_budget=4.0, breaker_threshold=100)
        client._request_full = transport
        assert client.predict("x").label == "IA"
        stats = client.stats()
        assert stats["retries"] == 1
        # One token spent, half a credit refunded by the success.
        assert stats["retry_budget_remaining"] == pytest.approx(3.5)

    def test_malformed_2xx_body_is_retried(self):
        transport = ScriptedTransport(
            [(200, b"{this is not json", {}), ok_response()]
        )
        client = make_client(breaker_threshold=100)
        client._request_full = transport
        assert client.predict("x").label == "IA"
        assert transport.calls == 2


class TestBackendFailureRetry:
    def test_backend_failure_503_is_retried(self):
        transport = ScriptedTransport(
            [
                error_response(503, "backend_failure"),
                error_response(503, "backend_failure"),
                ok_response(),
            ]
        )
        client = make_client()
        client._request_full = transport
        assert client.predict("x").label == "IA"
        assert transport.calls == 3
        assert client.stats()["retries"] == 2

    def test_draining_503_stays_terminal(self):
        transport = ScriptedTransport([error_response(503, "unavailable")])
        client = make_client()
        client._request_full = transport
        with pytest.raises(GatewayUnavailable):
            client.predict("x")
        assert transport.calls == 1

    def test_deadline_header_sent_and_shrinks_across_retries(self):
        transport = ScriptedTransport(
            [error_response(503, "backend_failure"), ok_response()]
        )
        client = make_client(deadline_s=5.0, retry_base_s=0.02)
        client._request_full = transport
        client.predict("x")
        headers = transport.seen_headers
        assert len(headers) == 2
        first = int(headers[0]["X-Deadline-Ms"])
        second = int(headers[1]["X-Deadline-Ms"])
        assert 0 < first <= 5000
        assert second < first  # backoff time came out of the budget

    def test_non_resilient_paths_send_no_deadline_header(self):
        transport = ScriptedTransport([ok_response({"models": []})])
        client = make_client()
        client._request_full = transport
        client.models()
        assert transport.seen_headers == [None]


def _post(url, path, body, headers=None, timeout=10.0):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode() if isinstance(body, dict) else body,
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestDeadlineShedding:
    def test_starved_budget_is_shed_with_504_and_counted(self):
        backend = SlowBackend(0.05)
        with gateway_over(backend, workers=1) as (gateway, server):
            # Prime the p50 estimate past the minimum-sample threshold.
            texts = [f"warm {i}" for i in range(60)]
            status, _ = _post(gateway.url, "/v1/predict_batch", {"texts": texts})
            assert status == 200
            assert gateway.observed_p50_ms() > 0.0
            # 1ms of budget cannot cover a ~50ms p50: shed up front.
            status, payload = _post(
                gateway.url,
                "/v1/predict",
                {"text": "too late"},
                headers={"X-Deadline-Ms": "1"},
            )
            assert status == 504
            assert payload["error"]["code"] == "deadline_shed"
            snapshot = server.stats.snapshot()
            assert snapshot.deadline_shed == 1
            assert snapshot.shed == 0  # counted apart from overload sheds

    def test_generous_budget_is_served(self):
        backend = SlowBackend(0.01)
        with gateway_over(backend, workers=1) as (gateway, _server):
            status, payload = _post(
                gateway.url,
                "/v1/predict",
                {"text": "plenty of time"},
                headers={"X-Deadline-Ms": "30000"},
            )
            assert status == 200 and "label" in payload

    def test_malformed_deadline_header_is_ignored(self):
        with gateway_over() as (gateway, _server):
            for value in ("nan", "inf", "-3", "abc", ""):
                status, payload = _post(
                    gateway.url,
                    "/v1/predict",
                    {"text": "fine"},
                    headers={"X-Deadline-Ms": value},
                )
                assert status == 200, (value, payload)

    def test_no_shedding_before_minimum_samples(self):
        # With a cold p50 estimate the gateway must not guess: even a
        # tiny budget is *admitted* until enough requests were observed.
        # (It may still time out inside the engine — deadline_exceeded —
        # but it must never be pre-emptively deadline_shed.)
        with gateway_over() as (gateway, _server):
            status, payload = _post(
                gateway.url,
                "/v1/predict",
                {"text": "cold start"},
                headers={"X-Deadline-Ms": "1"},
            )
            if status != 200:
                assert payload["error"]["code"] == "deadline_exceeded"
            assert _server.stats.snapshot().deadline_shed == 0


class TestAdminSurface:
    def test_admin_disabled_is_404(self):
        with gateway_over() as (gateway, _server):
            status, payload = _post(
                gateway.url,
                "/v1/admin/reload",
                {"checkpoint": "/nope"},
                headers={"X-Admin-Token": "anything"},
            )
            assert status == 404
            assert payload["error"]["code"] == "not_found"

    def test_wrong_token_is_403(self):
        with gateway_over(admin_token="s3cret") as (gateway, _server):
            for headers in ({}, {"X-Admin-Token": "wrong"}):
                status, payload = _post(
                    gateway.url, "/v1/admin/reload", {"checkpoint": "/x"}, headers
                )
                assert status == 403
                assert payload["error"]["code"] == "forbidden"

    def test_reload_on_threaded_server_is_409(self):
        with gateway_over(admin_token="s3cret") as (gateway, _server):
            status, payload = _post(
                gateway.url,
                "/v1/admin/reload",
                {"checkpoint": "/tmp/whatever"},
                headers={"X-Admin-Token": "s3cret"},
            )
            assert status == 409
            assert payload["error"]["code"] == "reload_unsupported"

    def test_reload_requires_checkpoint_field(self):
        with gateway_over(admin_token="s3cret") as (gateway, _server):
            status, payload = _post(
                gateway.url,
                "/v1/admin/reload",
                {},
                headers={"X-Admin-Token": "s3cret"},
            )
            assert status == 400

    def test_chaos_arming_rejects_bad_plans(self):
        with gateway_over(admin_token="s3cret") as (gateway, _server):
            status, payload = _post(
                gateway.url,
                "/v1/admin/chaos",
                {"plan_version": 1, "seed": "x"},
                headers={"X-Admin-Token": "s3cret"},
            )
            assert status == 400
            assert payload["error"]["code"] == "bad_plan"


class TestChaosHttpFaults:
    def plan(self, kind, count=0):
        return FaultPlan(
            seed=0,
            events=(FaultEvent(at_s=0.0, kind=kind, duration_s=30.0, count=count),),
        )

    def arm(self, gateway, plan):
        status, payload = _post(
            gateway.url,
            "/v1/admin/chaos",
            plan.to_dict(),
            headers={"X-Admin-Token": "s3cret"},
        )
        assert status == 200 and payload["status"] == "armed"

    def test_socket_reset_fault_then_clean_recovery(self):
        with gateway_over(admin_token="s3cret") as (gateway, _server):
            self.arm(gateway, self.plan("socket_reset", count=1))
            client = ServingClient(
                gateway.url, deadline_s=10.0, retry_base_s=0.01, retry_jitter=0.0
            )
            # The single reset is absorbed by a transport retry.
            assert client.predict("ride out the reset").label
            assert client.stats()["transport_failures"] == 1
            assert gateway.chaos_summary()["injected"] == {"socket_reset": 1}

    def test_truncated_response_fault_is_retried(self):
        with gateway_over(admin_token="s3cret") as (gateway, _server):
            self.arm(gateway, self.plan("truncate_response", count=1))
            client = ServingClient(
                gateway.url, deadline_s=10.0, retry_base_s=0.01, retry_jitter=0.0
            )
            assert client.predict("survive truncation").label
            assert client.stats()["transport_failures"] == 1

    def test_malformed_response_fault_is_retried(self):
        with gateway_over(admin_token="s3cret") as (gateway, _server):
            self.arm(gateway, self.plan("malformed_response", count=2))
            client = ServingClient(
                gateway.url, deadline_s=10.0, retry_base_s=0.01, retry_jitter=0.0
            )
            assert client.predict("survive garbage json").label
            assert client.stats()["transport_failures"] == 2

    def test_metrics_expose_armed_state_and_injections(self):
        with gateway_over(admin_token="s3cret") as (gateway, _server):
            self.arm(gateway, self.plan("malformed_response", count=1))
            client = ServingClient(
                gateway.url, deadline_s=10.0, retry_base_s=0.01, retry_jitter=0.0
            )
            client.predict("trip the fault")
            metrics = client.metrics()
            assert metrics[("holistix_chaos_armed", frozenset())] == 1.0
            assert (
                metrics[
                    (
                        "holistix_chaos_injected_total",
                        frozenset({("kind", "malformed_response")}),
                    )
                ]
                == 1.0
            )
            gateway.disarm_chaos()
            metrics = client.metrics()
            assert ("holistix_chaos_armed", frozenset()) not in metrics
