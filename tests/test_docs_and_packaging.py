"""Sanity tests on documentation, packaging and public API surface."""

import importlib
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocumentation:
    def test_required_files_exist(self):
        for name in (
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "pyproject.toml",
            "docs/ARCHITECTURE.md",
            "docs/BENCHMARKING.md",
            "docs/SERVING.md",
        ):
            assert (REPO_ROOT / name).is_file(), name

    def test_design_covers_every_experiment(self):
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for experiment_id in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"):
            assert experiment_id in design

    def test_experiments_md_records_paper_numbers(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        assert "37082" in text      # Table II
        assert "75.92" in text      # kappa
        assert "0.74" in text       # MentalBERT paper accuracy

    def test_readme_quickstart_imports_work(self):
        # The classes the README's quickstart uses must exist at the
        # documented paths.
        from repro import HolistixDataset, WellnessClassifier  # noqa: F401

    def test_architecture_doc_covers_every_package(self):
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
        for package in (
            "repro.corpus",
            "repro.annotation",
            "repro.core",
            "repro.text",
            "repro.sparse",
            "repro.ml",
            "repro.nn",
            "repro.models",
            "repro.engine",
            "repro.serving",
            "repro.explain",
            "repro.experiments",
        ):
            assert package in text, package
        assert "prediction" in text.lower()  # the walkthrough section

    def test_architecture_doc_linked_from_readme_and_design(self):
        for name in ("README.md", "DESIGN.md"):
            text = (REPO_ROOT / name).read_text(encoding="utf-8")
            assert "docs/ARCHITECTURE.md" in text, name

    def test_serving_doc_covers_wire_protocol(self):
        text = (REPO_ROOT / "docs" / "SERVING.md").read_text(encoding="utf-8")
        for needle in (
            "/v1/predict",
            "/v1/predict_batch",
            "/healthz",
            "/metrics",
            "/v1/models",
            "429",
            "503",
            "holistix-serve",
            "curl",
            "Retry-After",
            "holistix_server_requests_total",
        ):
            assert needle in text, needle

    def test_serving_doc_linked_from_readme_and_architecture(self):
        for name in ("README.md", "docs/ARCHITECTURE.md"):
            text = (REPO_ROOT / name).read_text(encoding="utf-8")
            assert "SERVING.md" in text, name

    def test_console_scripts_declared_and_resolve(self):
        pyproject = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        assert 'holistix-experiments = "repro.experiments.runner:main"' in pyproject
        assert 'holistix-serve = "repro.serving.cli:main"' in pyproject
        assert 'holistix-loadgen = "repro.loadgen.cli:main"' in pyproject
        from repro.experiments.runner import main as experiments_main
        from repro.loadgen.cli import main as loadgen_main
        from repro.serving.cli import main as serve_main

        assert callable(experiments_main) and callable(serve_main)
        assert callable(loadgen_main)

    def test_benchmarking_doc_covers_harness(self):
        text = (REPO_ROOT / "docs" / "BENCHMARKING.md").read_text(encoding="utf-8")
        for needle in (
            "benchmarks.harness",
            "BENCH_",
            "--quick",
            "--check",
            "git_sha",
            "timings",
            "metrics",
        ):
            assert needle in text, needle
        from benchmarks.harness import SCENARIOS

        for scenario in SCENARIOS:
            assert scenario in text, scenario

    def test_benchmark_records_committed(self):
        records = REPO_ROOT / "benchmarks" / "records"
        for name in ("BENCH_tfidf.json", "BENCH_table4.json"):
            assert (records / name).is_file(), name

    def test_experiments_md_has_performance_section(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        assert "## Performance" in text

    def test_examples_exist_and_have_mains(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        for path in examples:
            source = path.read_text(encoding="utf-8")
            assert '__main__' in source, path.name
            assert source.startswith('"""'), f"{path.name} missing docstring"


class TestPublicApi:
    PACKAGES = [
        "repro",
        "repro.core",
        "repro.corpus",
        "repro.annotation",
        "repro.sparse",
        "repro.text",
        "repro.ml",
        "repro.nn",
        "repro.models",
        "repro.engine",
        "repro.serving",
        "repro.explain",
        "repro.experiments",
    ]

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_docstrings(self, package):
        module = importlib.import_module(package)
        assert module.__doc__, package

    def test_every_public_module_has_docstring(self):
        src = REPO_ROOT / "src" / "repro"
        for path in src.rglob("*.py"):
            source = path.read_text(encoding="utf-8")
            if path.name == "__init__.py" and not source.strip():
                continue
            assert source.lstrip().startswith('"""'), path

    def test_version_exposed(self):
        import repro

        assert repro.__version__
