"""Sanity tests on documentation, packaging and public API surface."""

import importlib
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocumentation:
    def test_required_files_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml"):
            assert (REPO_ROOT / name).is_file(), name

    def test_design_covers_every_experiment(self):
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for experiment_id in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"):
            assert experiment_id in design

    def test_experiments_md_records_paper_numbers(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        assert "37082" in text      # Table II
        assert "75.92" in text      # kappa
        assert "0.74" in text       # MentalBERT paper accuracy

    def test_readme_quickstart_imports_work(self):
        # The classes the README's quickstart uses must exist at the
        # documented paths.
        from repro import HolistixDataset, WellnessClassifier  # noqa: F401

    def test_examples_exist_and_have_mains(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        for path in examples:
            source = path.read_text(encoding="utf-8")
            assert '__main__' in source, path.name
            assert source.startswith('"""'), f"{path.name} missing docstring"


class TestPublicApi:
    PACKAGES = [
        "repro",
        "repro.core",
        "repro.corpus",
        "repro.annotation",
        "repro.text",
        "repro.ml",
        "repro.nn",
        "repro.models",
        "repro.engine",
        "repro.explain",
        "repro.experiments",
    ]

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_docstrings(self, package):
        module = importlib.import_module(package)
        assert module.__doc__, package

    def test_every_public_module_has_docstring(self):
        src = REPO_ROOT / "src" / "repro"
        for path in src.rglob("*.py"):
            source = path.read_text(encoding="utf-8")
            if path.name == "__init__.py" and not source.strip():
                continue
            assert source.lstrip().startswith('"""'), path

    def test_version_exposed(self):
        import repro

        assert repro.__version__
