"""Tests for the autograd engine: every backward rule vs finite differences."""

import numpy as np
import pytest

from repro.nn.functional import attention_mask_from_padding, cross_entropy, dropout
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad


def numeric_gradient(fn, x0, eps=1e-3):
    """Central finite differences of a scalar-valued function."""
    grad = np.zeros_like(x0)
    it = np.nditer(x0, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        plus = x0.copy()
        plus[idx] += eps
        minus = x0.copy()
        minus[idx] -= eps
        grad[idx] = (fn(Tensor(plus)).item() - fn(Tensor(minus)).item()) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(fn, shape, seed=0, tol=5e-2):
    rng = np.random.default_rng(seed)
    x0 = rng.normal(size=shape).astype(np.float32)
    x = Tensor(x0, requires_grad=True)
    fn(x).backward()
    numeric = numeric_gradient(fn, x0)
    np.testing.assert_allclose(x.grad, numeric, atol=tol, rtol=tol)


class TestElementwiseGradients:
    def test_add(self):
        check_gradient(lambda x: (x + 3.0).sum(), (3, 4))

    def test_mul(self):
        rng = np.random.default_rng(1)
        other = Tensor(rng.normal(size=(3, 4)).astype(np.float32))
        check_gradient(lambda x: (x * other).sum(), (3, 4))

    def test_div(self):
        check_gradient(lambda x: (x / 2.5).sum(), (2, 3))

    def test_div_by_tensor(self):
        denom = Tensor(np.full((2, 3), 2.0, dtype=np.float32), requires_grad=True)
        x = Tensor(np.ones((2, 3), dtype=np.float32))
        (x / denom).sum().backward()
        np.testing.assert_allclose(denom.grad, -0.25 * np.ones((2, 3)), rtol=1e-5)

    def test_pow(self):
        check_gradient(lambda x: (x**3).sum(), (4,))

    def test_exp(self):
        check_gradient(lambda x: x.exp().sum(), (3, 3))

    def test_log(self):
        rng = np.random.default_rng(2)
        x0 = (rng.random((3, 3)) + 0.5).astype(np.float32)
        x = Tensor(x0, requires_grad=True)
        x.log().sum().backward()
        np.testing.assert_allclose(x.grad, 1.0 / x0, rtol=1e-4)

    def test_tanh(self):
        check_gradient(lambda x: x.tanh().sum(), (5,))

    def test_relu(self):
        x = Tensor(np.array([-1.0, 0.5, 2.0], dtype=np.float32), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 1.0])

    def test_gelu(self):
        check_gradient(lambda x: x.gelu().sum(), (6,))

    def test_sigmoid(self):
        check_gradient(lambda x: x.sigmoid().sum(), (4,))

    def test_neg_sub(self):
        check_gradient(lambda x: (5.0 - x).sum(), (3,))


class TestBroadcastGradients:
    def test_bias_broadcast(self):
        bias = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        x = Tensor(np.ones((3, 4), dtype=np.float32))
        (x + bias).sum().backward()
        np.testing.assert_array_equal(bias.grad, [3.0] * 4)

    def test_keepdim_broadcast(self):
        scale = Tensor(np.ones((3, 1), dtype=np.float32), requires_grad=True)
        x = Tensor(np.full((3, 4), 2.0, dtype=np.float32))
        (x * scale).sum().backward()
        np.testing.assert_array_equal(scale.grad, [[8.0]] * 3)


class TestMatmulGradients:
    def test_2d(self):
        rng = np.random.default_rng(3)
        w = Tensor(rng.normal(size=(4, 2)).astype(np.float32))
        check_gradient(lambda x: (x @ w).sum(), (3, 4))

    def test_3d_batched(self):
        rng = np.random.default_rng(4)
        w = Tensor(rng.normal(size=(4, 2)).astype(np.float32))
        check_gradient(lambda x: (x @ w).sum(), (2, 3, 4))

    def test_weight_gradient(self):
        rng = np.random.default_rng(5)
        x0 = rng.normal(size=(3, 4)).astype(np.float32)
        w0 = rng.normal(size=(4, 2)).astype(np.float32)
        w = Tensor(w0, requires_grad=True)
        (Tensor(x0) @ w).sum().backward()
        np.testing.assert_allclose(w.grad, x0.T @ np.ones((3, 2)), rtol=1e-5)

    def test_4d_attention_shape(self):
        rng = np.random.default_rng(6)
        k = Tensor(rng.normal(size=(2, 2, 5, 3)).astype(np.float32))
        check_gradient(lambda q: (q @ k.swapaxes(-1, -2)).sum(), (2, 2, 5, 3), tol=0.1)


class TestReductionGradients:
    def test_sum_all(self):
        check_gradient(lambda x: x.sum(), (3, 4))

    def test_sum_axis(self):
        check_gradient(lambda x: (x.sum(axis=1) ** 2).sum(), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda x: (x.sum(axis=-1, keepdims=True) * x).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda x: (x.mean(axis=0) ** 2).sum(), (4, 3))

    def test_max(self):
        x = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]], dtype=np.float32), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_array_equal(x.grad, [[0, 1], [1, 0]])


class TestShapeGradients:
    def test_reshape(self):
        check_gradient(lambda x: (x.reshape(6) ** 2).sum(), (2, 3))

    def test_transpose(self):
        rng = np.random.default_rng(7)
        c = Tensor(rng.normal(size=(4, 3)).astype(np.float32))
        check_gradient(lambda x: (x.transpose(1, 0) * c).sum(), (3, 4))

    def test_swapaxes(self):
        check_gradient(lambda x: (x.swapaxes(0, 1) ** 2).sum(), (2, 3))

    def test_getitem(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        x[:, 0].sum().backward()
        np.testing.assert_array_equal(x.grad, [[1, 0, 0], [1, 0, 0]])

    def test_concatenate(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        Tensor.concatenate([a, b], axis=0).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 2)))
        np.testing.assert_array_equal(b.grad, np.ones((3, 2)))


class TestCompositeGradients:
    def test_softmax(self):
        rng = np.random.default_rng(8)
        c = Tensor(rng.normal(size=(3, 4)).astype(np.float32))
        check_gradient(lambda x: (x.softmax(axis=-1) * c).sum(), (3, 4))

    def test_softmax_rows_sum_one(self):
        rng = np.random.default_rng(9)
        x = Tensor(rng.normal(size=(5, 7)).astype(np.float32))
        np.testing.assert_allclose(x.softmax(axis=-1).data.sum(axis=-1), 1.0, rtol=1e-5)

    def test_masked_fill_blocks_gradient(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        x.masked_fill(mask, -1e9).sum().backward()
        np.testing.assert_array_equal(x.grad, [[0, 1], [1, 0]])

    def test_embedding_scatter_add(self):
        weight = Tensor(np.zeros((4, 2), dtype=np.float32), requires_grad=True)
        ids = np.array([[0, 1, 1]])
        Tensor.embedding(weight, ids).sum().backward()
        np.testing.assert_array_equal(weight.grad, [[1, 1], [2, 2], [0, 0], [0, 0]])

    def test_layernorm_composition(self):
        def layer_norm(x):
            mu = x.mean(axis=-1, keepdims=True)
            centred = x - mu
            var = (centred * centred).mean(axis=-1, keepdims=True)
            return (centred * (var + 1e-5) ** -0.5).sum()

        check_gradient(layer_norm, (3, 6))


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]], dtype=np.float32))
        loss = cross_entropy(logits, np.array([0, 1]))
        expected = -np.log(np.exp(2) / (np.exp(2) + 1))
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_gradient(self):
        targets = np.array([0, 2, 1])
        check_gradient(lambda x: cross_entropy(x, targets), (3, 4))

    def test_ignore_index(self):
        logits = Tensor(
            np.array([[5.0, 0.0], [0.0, 5.0]], dtype=np.float32), requires_grad=True
        )
        loss = cross_entropy(logits, np.array([0, -100]), ignore_index=-100)
        loss.backward()
        # Ignored row contributes nothing.
        np.testing.assert_array_equal(logits.grad[1], [0.0, 0.0])

    def test_3d_logits(self):
        targets = np.array([[0, 1], [1, 0]])
        check_gradient(lambda x: cross_entropy(x, targets), (2, 2, 3))

    def test_all_ignored_rejected(self):
        logits = Tensor(np.zeros((1, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            cross_entropy(logits, np.array([-100]), ignore_index=-100)

    def test_shape_mismatch(self):
        logits = Tensor(np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            cross_entropy(logits, np.array([0, 1, 2]))


class TestAutogradMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        (x * x).backward()  # d/dx x^2 = 2x = 4
        np.testing.assert_allclose(x.grad, [4.0])

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_backward_nonscalar_needs_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_detach(self):
        x = Tensor(np.ones(2), requires_grad=True)
        assert not x.detach().requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(1), requires_grad=True)
        (x * 1).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # x feeds two paths that rejoin: gradient must sum correctly.
        x = Tensor(np.array([3.0], dtype=np.float32), requires_grad=True)
        a = x * 2
        b = x * 5
        (a + b).backward()
        np.testing.assert_allclose(x.grad, [7.0])


class TestDropoutAndMask:
    def test_dropout_off_in_eval(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((4, 4)))
        out = dropout(x, 0.5, rng, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(2)), 1.0, np.random.default_rng(0), training=True)

    def test_padding_mask_shape(self):
        ids = np.array([[1, 2, 0], [3, 0, 0]])
        mask = attention_mask_from_padding(ids, pad_id=0)
        assert mask.shape == (2, 1, 1, 3)
        assert mask[0, 0, 0].tolist() == [False, False, True]
