"""Smoke tests: every example script runs end to end.

Examples are the documentation users actually execute, so they are run
as subprocesses (fresh interpreter, no test-suite state) and checked for
a zero exit code plus their key output lines.
"""

import pathlib
import subprocess
import sys


REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"


def _run(script: str, *args: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "test accuracy" in out
        assert "Classifying new narratives" in out
        assert "top keywords" in out

    def test_build_dataset(self, tmp_path):
        out = _run("build_dataset.py", str(tmp_path / "holistix.jsonl"))
        assert "raw posts                2000" in out
        assert "after topic filter       1420" in out
        assert "Fleiss' kappa" in out
        assert "reload check passed" in out

    def test_model_comparison_fast(self):
        out = _run("model_comparison.py", "--fast")
        assert "Gaussian NB" in out
        assert "MentalBERT" in out

    def test_explain_predictions(self):
        out = _run("explain_predictions.py")
        assert "keywords" in out
        assert "Table V metrics" in out

    def test_wellness_profiles(self):
        out = _run("wellness_profiles.py")
        assert "acute-risk" in out
        assert "FLAGGED" in out
        assert "steady-worker" in out

    def test_multilabel_and_spans(self):
        out = _run("multilabel_and_spans.py")
        assert "micro F1" in out
        assert "ROUGE-1" in out
        assert "most central dimension" in out

    def test_serve_and_persist(self):
        out = _run("serve_and_persist.py")
        assert "Reloaded model predictions identical: True" in out
        assert "throughput" in out
        assert "per-worker requests" in out
        assert "replica caches" in out
        assert "shed rate" in out
        assert "/healthz -> {'status': 'ok'" in out
        assert "POST /v1/predict top_k=2 ->" in out
        assert "holistix_server_requests_total" in out
        assert "gateway drained and stopped" in out
        assert "answered 429" in out
