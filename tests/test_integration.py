"""Integration tests: cross-module pipelines end to end."""

import numpy as np
import pytest

from repro.annotation import run_annotation_study
from repro.core import HolistixDataset, WellnessClassifier
from repro.core.labels import DIMENSIONS
from repro.core.profiles import build_profile, triage
from repro.corpus import SimulatedForum, preprocess, scrape_forum
from repro.explain import LimeTextExplainer, score_explanations


class TestForumToDatasetPipeline:
    """§II end to end: generate → forum → scrape → clean → annotate."""

    def test_full_pipeline_small(self, small_dataset):
        gold = list(small_dataset)
        forum = SimulatedForum.populate(gold, seed=11)
        scraped = scrape_forum(forum)
        clean, report = preprocess(scraped)
        assert {p.text for p in clean} == {g.text for g in gold}
        assert report.raw == len(gold) + 580

    def test_annotation_study_on_clean_data(self, small_dataset):
        report = run_annotation_study(list(small_dataset), seed=3)
        assert 0.4 < report.kappa < 1.0


class TestTrainPredictExplainPipeline:
    """Classifier lifecycle: fit → predict → explain → score."""

    @pytest.fixture(scope="class")
    def fitted(self, small_dataset):
        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        clf = WellnessClassifier("LR").fit(split.train)
        return clf, split

    def test_predictions_cover_split(self, fitted):
        clf, split = fitted
        predictions = clf.predict(split.test.texts)
        assert len(predictions) == len(split.test)
        assert all(p in DIMENSIONS for p in predictions)

    def test_explanations_score_against_gold(self, fitted):
        clf, split = fitted
        explainer = LimeTextExplainer(clf.predict_proba, n_samples=100, seed=0)
        explanations = [explainer.explain(split.test[i].text) for i in range(5)]
        gold = [split.test[i].span_text for i in range(5)]
        similarity = score_explanations(explanations, gold)
        assert similarity.f1 > 0.05

    def test_profiles_from_predictions(self, fitted):
        clf, split = fitted
        predictions = clf.predict(split.test.texts[:10])
        profile = build_profile("itest-user", predictions)
        decision = triage(profile)
        assert profile.n_posts == 10
        assert isinstance(decision.flagged, bool)


class TestTransformerPipeline:
    """Tiny transformer through the full pipeline object."""

    def test_fast_transformer_end_to_end(self, small_dataset):
        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        clf = WellnessClassifier("GPT-2.0", fast=True).fit(
            split.train, validation=split.validation
        )
        predictions = clf.predict(split.test.texts)
        assert len(predictions) == 22
        probs = clf.predict_proba(split.test.texts[:3])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-4)

    def test_transformer_explanation(self, small_dataset):
        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        clf = WellnessClassifier("DistilBERT", fast=True).fit(split.train)
        explanation = clf.explain(split.test[0].text, n_samples=60)
        assert explanation.word_weights


class TestDeterminismAcrossTheBoard:
    def test_dataset_build_deterministic(self):
        a = HolistixDataset.build()
        b = HolistixDataset.build()
        assert a.texts == b.texts
        assert [x.code for x in a.labels] == [x.code for x in b.labels]

    def test_classifier_deterministic(self, small_dataset):
        split = small_dataset.fixed_split(train=100, validation=20, test=22)
        p1 = WellnessClassifier("LR").fit(split.train).predict(split.test.texts)
        p2 = WellnessClassifier("LR").fit(split.train).predict(split.test.texts)
        assert p1 == p2

    def test_annotation_study_deterministic(self, small_dataset):
        a = run_annotation_study(list(small_dataset), seed=5)
        b = run_annotation_study(list(small_dataset), seed=5)
        assert a.kappa == b.kappa
