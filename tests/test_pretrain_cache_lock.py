"""Single-flight coordination of the on-disk pretraining cache.

With ``--jobs N`` the experiment pool's worker processes all used to
miss the cold disk cache at the same instant and each re-pretrain the
same checkpoint — N cores of duplicate work that flattened the pool's
speedup.  The lock-file protocol in :mod:`repro.models.trainer` elects
one pretrainer; these tests pin its three contractual behaviours:
mutual exclusion, waiters loading the winner's checkpoint, and graceful
degradation (a crashed or stale holder costs duplicate work, never a
hang).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.models.trainer import (
    Trainer,
    _await_pretrain_cache,
    _disk_cache_store,
    _pretrain_lock_path,
    _release_pretrain_lock,
    _try_acquire_pretrain_lock,
)


@pytest.fixture
def cache_path(tmp_path) -> Path:
    return tmp_path / "cache" / "abc123.npz"


class TestLockPrimitive:
    def test_first_acquire_wins_second_loses(self, cache_path):
        lock = _pretrain_lock_path(cache_path)
        assert _try_acquire_pretrain_lock(lock)
        assert not _try_acquire_pretrain_lock(lock)
        _release_pretrain_lock(lock)
        assert _try_acquire_pretrain_lock(lock)
        _release_pretrain_lock(lock)

    def test_release_is_idempotent(self, cache_path):
        lock = _pretrain_lock_path(cache_path)
        assert _try_acquire_pretrain_lock(lock)
        _release_pretrain_lock(lock)
        _release_pretrain_lock(lock)  # already gone: no error

    def test_unwritable_dir_degrades_to_local_pretrain(self, tmp_path):
        # Claiming "I hold the lock" on an unwritable cache dir makes the
        # caller pretrain locally — caching stays best-effort.
        blocked = tmp_path / "ro"
        blocked.mkdir()
        blocked.chmod(0o500)
        try:
            lock = _pretrain_lock_path(blocked / "key.npz")
            assert _try_acquire_pretrain_lock(lock)
        finally:
            blocked.chmod(0o700)


class TestAwaitCheckpoint:
    def test_waiter_loads_checkpoint_when_holder_stores_it(self, cache_path):
        lock = _pretrain_lock_path(cache_path)
        assert _try_acquire_pretrain_lock(lock)
        state = {"w": np.arange(4.0)}

        def holder() -> None:
            time.sleep(0.15)
            _disk_cache_store(cache_path, state)
            _release_pretrain_lock(lock)

        thread = threading.Thread(target=holder)
        thread.start()
        loaded = _await_pretrain_cache(cache_path, lock, poll_s=0.02)
        thread.join()
        assert loaded is not None
        np.testing.assert_array_equal(loaded["w"], state["w"])

    def test_released_lock_without_checkpoint_means_pretrain_locally(
        self, cache_path
    ):
        # Holder crashed (or its best-effort store failed) and the lock
        # is gone: the waiter must fall back, not spin forever.
        lock = _pretrain_lock_path(cache_path)
        assert _await_pretrain_cache(cache_path, lock, poll_s=0.02) is None

    def test_stale_lock_gives_up(self, cache_path):
        lock = _pretrain_lock_path(cache_path)
        assert _try_acquire_pretrain_lock(lock)
        started = time.monotonic()
        assert (
            _await_pretrain_cache(cache_path, lock, poll_s=0.02, stale_s=0.1)
            is None
        )
        assert time.monotonic() - started < 5.0
        _release_pretrain_lock(lock)

    def test_checkpoint_already_present_returns_immediately(self, cache_path):
        _disk_cache_store(cache_path, {"w": np.ones(3)})
        lock = _pretrain_lock_path(cache_path)
        assert _try_acquire_pretrain_lock(lock)  # even with a held lock
        loaded = _await_pretrain_cache(cache_path, lock, poll_s=0.02)
        assert loaded is not None
        _release_pretrain_lock(lock)


class TestSingleFlightThroughTrainer:
    def test_concurrent_cold_miss_pretrains_exactly_once(
        self, tmp_path, monkeypatch, small_dataset
    ):
        """Two trainers racing a cold cache: one pretrains, one loads.

        ``pretrain`` is stubbed (counted, slowed enough to guarantee
        overlap); the in-process dict is cleared so both racers really
        hit the disk path like separate ``--jobs`` worker processes do.
        """
        import repro.models.trainer as trainer_mod
        from repro.models.config import MODEL_CONFIGS
        from repro.text.vocab import Vocabulary

        monkeypatch.setenv("REPRO_PRETRAIN_CACHE", str(tmp_path / "flight"))
        monkeypatch.setattr(trainer_mod, "_PRETRAINED_CACHE", {})

        calls: list[float] = []
        call_lock = threading.Lock()

        def fake_pretrain(model, corpus, **kwargs):
            with call_lock:
                calls.append(time.monotonic())
            time.sleep(0.3)
            return [1.0]

        monkeypatch.setattr(trainer_mod, "pretrain", fake_pretrain)
        monkeypatch.setattr(
            trainer_mod, "build_pretraining_corpus", lambda *a, **k: ["text"]
        )

        config = MODEL_CONFIGS["BERT"]
        vocab = Vocabulary.build(small_dataset.texts[:50], max_size=300)
        errors: list[Exception] = []

        def run_one() -> None:
            try:
                local = Trainer(config, vocab)
                local.maybe_pretrain()
                # The in-process dict was seeded by whichever path ran.
                assert trainer_mod._PRETRAINED_CACHE
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=run_one) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert len(calls) == 1, (
            f"single-flight failed: pretrain ran {len(calls)} times"
        )
        # The loser left no lock behind; a later cold start is unblocked.
        cache_dir = Path(tmp_path / "flight")
        assert not list(cache_dir.glob("*.lock"))
        assert list(cache_dir.glob("*.npz"))
