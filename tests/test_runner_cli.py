"""Tests for the experiment runner CLI."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "E1"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "37082" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "E42"])

    def test_invalid_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
