"""Tests for the classic ML substrate."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.logistic import LogisticRegression, softmax
from repro.ml.metrics import (
    accuracy,
    classification_report,
    confusion_matrix,
    precision_recall_f1,
)
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_validate,
    train_test_split,
)
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.preprocessing import LabelEncoder, StandardScaler
from repro.ml.svm import LinearSVM


def _blobs(n=120, seed=0, spread=0.6):
    """Three well-separated Gaussian blobs in 2-D."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0, 0], [4, 0], [0, 4]], dtype=float)
    x = np.vstack(
        [rng.normal(c, spread, size=(n // 3, 2)) for c in centers]
    )
    y = np.repeat(np.arange(3), n // 3)
    order = rng.permutation(len(y))
    return x[order], y[order]


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1001.0]]))
        assert np.isfinite(probs).all()

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))


class TestLogisticRegression:
    def test_separates_blobs(self):
        x, y = _blobs()
        model = LogisticRegression(max_iter=200).fit(x, y)
        assert accuracy(y.tolist(), model.predict(x).tolist()) > 0.95

    def test_predict_proba_valid(self):
        x, y = _blobs()
        model = LogisticRegression(max_iter=100).fit(x, y)
        probs = model.predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-6)
        assert (probs >= 0).all()

    def test_regularisation_shrinks_weights(self):
        x, y = _blobs()
        loose = LogisticRegression(c=100.0, max_iter=150).fit(x, y)
        tight = LogisticRegression(c=0.01, max_iter=150).fit(x, y)
        assert np.abs(tight.coef_).sum() < np.abs(loose.coef_).sum()

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            LogisticRegression(c=0.0)

    def test_binary_works(self):
        x, y = _blobs()
        mask = y < 2
        model = LogisticRegression(max_iter=100).fit(x[mask], y[mask])
        assert model.n_classes_ == 2


class TestLinearSVM:
    def test_separates_blobs(self):
        x, y = _blobs()
        model = LinearSVM(epochs=15, seed=0).fit(x, y)
        assert accuracy(y.tolist(), model.predict(x).tolist()) > 0.9

    def test_deterministic_given_seed(self):
        x, y = _blobs()
        a = LinearSVM(epochs=5, seed=42).fit(x, y).predict(x)
        b = LinearSVM(epochs=5, seed=42).fit(x, y).predict(x)
        np.testing.assert_array_equal(a, b)

    def test_decision_function_shape(self):
        x, y = _blobs()
        model = LinearSVM(epochs=5).fit(x, y)
        assert model.decision_function(x).shape == (len(x), 3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LinearSVM(c=-1)
        with pytest.raises(ValueError):
            LinearSVM(epochs=0)


class TestGaussianNB:
    def test_separates_blobs(self):
        x, y = _blobs()
        model = GaussianNaiveBayes().fit(x, y)
        assert accuracy(y.tolist(), model.predict(x).tolist()) > 0.95

    def test_proba_normalised(self):
        x, y = _blobs()
        model = GaussianNaiveBayes().fit(x, y)
        probs = model.predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-6)

    def test_priors_match_frequencies(self):
        x, y = _blobs()
        model = GaussianNaiveBayes().fit(x, y)
        np.testing.assert_allclose(model.class_prior_, [1 / 3] * 3, atol=0.01)

    def test_constant_feature_survives(self):
        x = np.array([[1.0, 5.0], [1.0, 6.0], [1.0, 1.0], [1.0, 0.0]])
        y = np.array([0, 0, 1, 1])
        model = GaussianNaiveBayes().fit(x, y)
        assert np.isfinite(model._joint_log_likelihood(x)).all()

    def test_missing_class_rejected(self):
        x = np.zeros((2, 2))
        y = np.array([0, 2])
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit(x, y)


class TestMetrics:
    def test_precision_recall_f1(self):
        gold = ["a", "a", "b", "b"]
        pred = ["a", "b", "b", "b"]
        m = precision_recall_f1(gold, pred, "b")
        assert m.precision == pytest.approx(2 / 3)
        assert m.recall == pytest.approx(1.0)
        assert m.f1 == pytest.approx(0.8)
        assert m.support == 2

    def test_zero_division_yields_zero(self):
        m = precision_recall_f1(["a", "a"], ["a", "a"], "b")
        assert m.precision == 0.0
        assert m.recall == 0.0
        assert m.f1 == 0.0

    def test_confusion_matrix(self):
        gold = ["a", "b", "a"]
        pred = ["a", "a", "b"]
        matrix = confusion_matrix(gold, pred, ["a", "b"])
        assert matrix.tolist() == [[1, 1], [1, 0]]

    def test_confusion_unknown_label(self):
        with pytest.raises(ValueError):
            confusion_matrix(["a"], ["c"], ["a", "b"])

    def test_report_aggregates(self):
        gold = ["a", "a", "b", "b"]
        pred = ["a", "a", "b", "a"]
        report = classification_report(gold, pred, ["a", "b"])
        assert report.accuracy == 0.75
        assert 0 < report.macro_f1 <= 1
        assert 0 < report.weighted_f1 <= 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(["a"], ["a", "b"])

    @given(st.lists(st.sampled_from("abc"), min_size=1, max_size=40))
    def test_perfect_prediction_metrics(self, labels):
        report = classification_report(labels, labels, ["a", "b", "c"])
        assert report.accuracy == 1.0
        for label in set(labels):
            assert report.per_class[label].f1 == 1.0


class TestModelSelection:
    def test_kfold_partitions(self):
        folds = KFold(n_splits=4, seed=1).split(22)
        eval_all = np.concatenate([e for _, e in folds])
        assert sorted(eval_all.tolist()) == list(range(22))
        for train, eval_ in folds:
            assert set(train) & set(eval_) == set()

    def test_kfold_too_many_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=5).split(3)

    def test_stratified_preserves_ratio(self):
        labels = ["a"] * 40 + ["b"] * 20
        folds = StratifiedKFold(n_splits=4, seed=0).split(labels)
        for _, eval_idx in folds:
            eval_labels = [labels[i] for i in eval_idx]
            assert eval_labels.count("a") == 10
            assert eval_labels.count("b") == 5

    def test_stratified_small_class_rejected(self):
        with pytest.raises(ValueError):
            StratifiedKFold(n_splits=5).split(["a"] * 10 + ["b"] * 3)

    def test_train_test_split(self):
        train, test = train_test_split(100, test_fraction=0.2, seed=0)
        assert len(test) == 20
        assert len(train) == 80
        assert set(train) | set(test) == set(range(100))

    def test_cross_validate_scores_each_fold(self):
        x, y = _blobs(n=90)
        labels = y.tolist()
        folds = StratifiedKFold(n_splits=3, seed=0).split(labels)

        def fit_predict(train_idx, eval_idx):
            model = LogisticRegression(max_iter=80).fit(x[train_idx], y[train_idx])
            return model.predict(x[eval_idx]).tolist()

        reports = cross_validate(fit_predict, labels, [0, 1, 2], folds)
        assert len(reports) == 3
        assert all(r.accuracy > 0.9 for r in reports)


class TestPreprocessing:
    def test_label_encoder_roundtrip(self):
        encoder = LabelEncoder().fit(["b", "a", "b"])
        ids = encoder.transform(["a", "b"])
        assert encoder.inverse_transform(ids) == ["a", "b"]

    def test_label_encoder_unseen(self):
        encoder = LabelEncoder().fit(["a"])
        with pytest.raises(ValueError):
            encoder.transform(["zzz"])

    def test_label_encoder_deterministic_order(self):
        a = LabelEncoder().fit(["x", "y"]).classes
        b = LabelEncoder().fit(["y", "x"]).classes
        assert a == b

    def test_scaler_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_scaler_constant_feature(self):
        x = np.ones((10, 2))
        scaled = StandardScaler().fit_transform(x)
        assert np.isfinite(scaled).all()
