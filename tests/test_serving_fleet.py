"""Fleet control-plane tests: routing, shadow mirroring, per-model ops.

Covers the :class:`ModelFleet` routing table (explicit ``model`` >
seeded A/B split > default), shadow entries (scored, counted, never
answering), the redesigned ``/v1`` wire surface over a multi-entry
fleet (``served_by`` envelopes, the fleet status document, per-model
Prometheus families), per-model admin selectors, and the deprecated
dict-shim on the typed client results.
"""

from __future__ import annotations

import hashlib
import time
from collections import Counter

import numpy as np
import pytest

from repro.engine.engine import PredictionEngine
from repro.engine.server import InferenceServer
from repro.serving.client import (
    PredictBatchResult,
    PredictResult,
    ServingClient,
    ServingError,
)
from repro.serving.fleet import ModelEntry, ModelFleet, UnknownModelError
from repro.serving.gateway import ServingGateway


class DeterministicBackend:
    """Probabilities as a pure function of the text — the parity oracle."""

    n_classes = 6

    def proba_batch(self, texts: list[str]) -> np.ndarray:
        rows = np.empty((len(texts), 6), dtype=np.float64)
        for i, text in enumerate(texts):
            digest = hashlib.sha256(text.encode("utf-8")).digest()
            vals = np.frombuffer(digest[:6], dtype=np.uint8).astype(np.float64) + 1.0
            rows[i] = vals / vals.sum()
        return rows


def make_server(model_id: str, **kwargs) -> InferenceServer:
    engine = PredictionEngine(DeterministicBackend(), model_id=model_id)
    kwargs.setdefault("workers", 1)
    return InferenceServer(engine, **kwargs)


def make_fleet(**fleet_kwargs) -> ModelFleet:
    """champion 0.9 / challenger 0.1 + one shadow — the canary shape."""
    return ModelFleet(
        [
            ModelEntry("champion", make_server("champ@v1"), weight=0.9),
            ModelEntry("challenger", make_server("chall@v2"), weight=0.1),
            ModelEntry("mirror", make_server("mirror@v1"), shadow=True),
        ],
        **fleet_kwargs,
    )


class TestRouting:
    def test_explicit_model_wins_over_split(self):
        fleet = make_fleet()
        for request_id in ("a", "b", "c"):
            assert fleet.route("challenger", request_id).name == "challenger"
            assert fleet.route("champion", request_id).name == "champion"

    def test_explicit_shadow_selection_is_allowed(self):
        # "Never answers" applies to mirrored traffic; a deliberate
        # operator request naming the shadow entry is served.
        fleet = make_fleet()
        assert fleet.route("mirror", "x").name == "mirror"

    def test_unknown_model_raises_with_known_names(self):
        fleet = make_fleet()
        with pytest.raises(UnknownModelError) as excinfo:
            fleet.route("nope", "x")
        assert excinfo.value.model == "nope"
        assert set(excinfo.value.known) == {"champion", "challenger", "mirror"}

    def test_split_is_deterministic_per_request_id(self):
        fleet = make_fleet()
        for i in range(50):
            request_id = f"req-{i}"
            first = fleet.route(None, request_id).name
            assert all(
                fleet.route(None, request_id).name == first for _ in range(5)
            )

    def test_split_honours_the_90_10_weights(self):
        fleet = make_fleet()
        counts = Counter(fleet.route(None, f"r{i}").name for i in range(4000))
        assert counts["mirror"] == 0
        share = counts["challenger"] / 4000
        assert 0.07 <= share <= 0.13, counts

    def test_split_seed_decorrelates_fleets(self):
        a = make_fleet(split_seed=1)
        b = make_fleet(split_seed=2)
        assignments_a = [a.route(None, f"r{i}").name for i in range(200)]
        assignments_b = [b.route(None, f"r{i}").name for i in range(200)]
        assert assignments_a != assignments_b

    def test_zero_weight_entry_serves_only_explicit_traffic(self):
        fleet = ModelFleet(
            [
                ModelEntry("main", make_server("m@1"), weight=1.0),
                ModelEntry("pinned", make_server("p@1"), weight=0.0),
            ]
        )
        assert all(
            fleet.route(None, f"r{i}").name == "main" for i in range(200)
        )
        assert fleet.route("pinned", "x").name == "pinned"
        assert fleet.traffic_share(fleet.entry("pinned")) == 0.0
        assert fleet.traffic_share(fleet.entry("main")) == 1.0

    def test_all_zero_weights_fall_back_to_default(self):
        fleet = ModelFleet(
            [
                ModelEntry("a", make_server("a@1"), weight=0.0),
                ModelEntry("b", make_server("b@1"), weight=0.0),
            ],
            default="b",
        )
        assert all(fleet.route(None, f"r{i}").name == "b" for i in range(20))

    def test_construction_validation(self):
        with pytest.raises(ValueError, match="at least one model"):
            ModelFleet([])
        with pytest.raises(ValueError, match="duplicate"):
            ModelFleet(
                [
                    ModelEntry("x", make_server("a@1")),
                    ModelEntry("x", make_server("b@1")),
                ]
            )
        with pytest.raises(ValueError, match="non-shadow"):
            ModelFleet([ModelEntry("s", make_server("s@1"), shadow=True)])
        with pytest.raises(ValueError, match="not in the fleet"):
            ModelFleet([ModelEntry("a", make_server("a@1"))], default="missing")
        with pytest.raises(ValueError, match="shadow entry"):
            ModelFleet(
                [
                    ModelEntry("a", make_server("a@1")),
                    ModelEntry("s", make_server("s@1"), shadow=True),
                ],
                default="s",
            )
        with pytest.raises(ValueError, match="weight"):
            ModelEntry("neg", make_server("n@1"), weight=-0.5)

    def test_shadow_weight_is_forced_to_zero(self):
        entry = ModelEntry("s", make_server("s@1"), weight=5.0, shadow=True)
        assert entry.weight == 0.0


class TestFleetGateway:
    @pytest.fixture()
    def gateway(self):
        fleet = make_fleet()
        with ServingGateway(fleet, admin_token="sekrit") as gw:
            yield gw

    def _wait_shadow_requests(self, gateway, minimum: int, timeout_s=5.0) -> int:
        """Mirrored submissions are fire-and-forget; poll until scored."""
        mirror = gateway.fleet.entry("mirror")
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            served = mirror.server.stats.snapshot().requests
            if served >= minimum:
                return served
            time.sleep(0.01)
        raise AssertionError(
            f"shadow served {mirror.server.stats.snapshot().requests} "
            f"< {minimum} within {timeout_s}s"
        )

    def test_served_by_envelope_and_explicit_routing(self, gateway):
        client = ServingClient(gateway.url, deadline_s=10)
        result = client.predict("hello fleet", model="challenger")
        assert result.served_by.model == "challenger"
        assert result.served_by.weights_version == 0
        assert result.model_id == "chall@v2"
        assert result.label
        batch = client.predict_batch(["a", "b"], model="champion")
        assert batch.served_by.model == "champion"
        assert all(p.served_by.model == "champion" for p in batch.predictions)

    def test_request_id_pins_the_split_assignment(self, gateway):
        client = ServingClient(gateway.url, deadline_s=10)
        expected = gateway.fleet.route(None, "pinned-req").name
        for _ in range(5):
            result = client.predict("same request", request_id="pinned-req")
            assert result.served_by.model == expected

    def test_unknown_model_is_404_with_structured_body(self, gateway):
        client = ServingClient(gateway.url, deadline_s=10)
        with pytest.raises(ServingError) as excinfo:
            client.predict("x", model="bogus")
        error = excinfo.value
        assert error.status == 404
        assert error.code == "model_not_found"
        assert error.model == "bogus"
        assert error.retriable is False
        assert error.body["error"]["model"] == "bogus"

    def test_shadow_scores_but_never_answers(self, gateway):
        client = ServingClient(gateway.url, deadline_s=10)
        n = 20
        served_by = [
            client.predict(f"mirrored {i}").served_by.model for i in range(n)
        ]
        assert "mirror" not in served_by
        # Every answered request was also mirrored to the shadow entry.
        self._wait_shadow_requests(gateway, n)
        counts = gateway.fleet.shadow_counts()
        assert counts["submitted"] >= n

    def test_fleet_status_document(self, gateway):
        client = ServingClient(gateway.url, deadline_s=10)
        client.predict("warm", model="champion")
        doc = client.models()
        assert doc["default_model"] == "champion"
        by_name = {m["name"]: m for m in doc["models"]}
        assert set(by_name) == {"champion", "challenger", "mirror"}
        champ = by_name["champion"]
        assert champ["state"] == "serving"
        assert champ["traffic_share"] == 0.9
        assert champ["weights_version"] == 0
        assert champ["pool"] == {"kind": "threads", "workers": 1}
        assert champ["requests"] >= 1
        assert set(champ["latency_ms"]) == {"p50", "p95", "p99"}
        assert by_name["mirror"]["shadow"] is True
        assert by_name["mirror"]["traffic_share"] == 0.0
        assert len(doc["registry"]) == 9
        assert not any(entry["loaded"] for entry in doc["registry"])

    def test_per_model_metrics_families(self, gateway):
        client = ServingClient(gateway.url, deadline_s=10)
        for i in range(6):
            client.predict(f"metrics {i}", model="champion")
        client.predict("one for the challenger", model="challenger")
        self._wait_shadow_requests(gateway, 7)
        samples = client.metrics()

        def value(name: str, **labels: str) -> float:
            return samples[(name, frozenset(labels.items()))]

        assert value("holistix_requests_total", model="champion") == 6
        assert value("holistix_requests_total", model="challenger") == 1
        assert value("holistix_requests_total", model="mirror") == 7
        assert value("holistix_model_traffic_share", model="champion") == 0.9
        assert value("holistix_model_traffic_share", model="mirror") == 0.0
        assert value("holistix_model_shadow", model="mirror") == 1
        assert value("holistix_model_shadow", model="champion") == 0
        assert value("holistix_model_weights_version", model="champion") == 0
        assert value("holistix_shadow_submitted_total") >= 7
        assert value("holistix_shadow_failed_total") == 0
        for q in ("0.5", "0.95", "0.99"):
            assert (
                value("holistix_model_latency_ms", model="champion", quantile=q)
                >= 0.0
            )
        assert value("holistix_model_latency_ms_count", model="champion") == 6

    def test_observed_split_matches_metrics_counters(self, gateway):
        # Deterministic audit: the fleet's own hash decides each
        # request id's entry, so the per-model counters must match the
        # precomputed assignment exactly.
        client = ServingClient(gateway.url, deadline_s=30)
        n = 60
        expected = Counter(
            gateway.fleet.route(None, f"split-{i}").name for i in range(n)
        )
        for i in range(n):
            client.predict(f"text {i}", request_id=f"split-{i}")
        samples = client.metrics()
        for name in ("champion", "challenger"):
            got = samples[
                ("holistix_requests_total", frozenset({("model", name)}))
            ]
            assert got == expected[name], (name, expected)

    def test_admin_reload_requires_model_selector_on_multi_fleet(self, gateway):
        client = ServingClient(gateway.url, deadline_s=10)
        status, payload = _admin_post(
            gateway, "/v1/admin/reload", {"checkpoint": "/nope"}
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "model" in payload["error"]["message"]
        status, payload = _admin_post(
            gateway,
            "/v1/admin/reload",
            {"checkpoint": "/nope", "model": "ghost"},
        )
        assert status == 404
        assert payload["error"]["code"] == "model_not_found"
        assert payload["error"]["model"] == "ghost"
        # Threaded pools have no shared weights to swap.
        status, payload = _admin_post(
            gateway,
            "/v1/admin/reload",
            {"checkpoint": "/nope", "model": "challenger"},
        )
        assert status == 409
        assert payload["error"]["code"] == "reload_unsupported"
        assert payload["error"]["model"] == "challenger"
        del client

    def test_admin_chaos_takes_a_model_selector(self, gateway):
        from repro.chaos import FaultEvent, FaultPlan

        plan = FaultPlan(
            seed=7,
            events=(
                FaultEvent(at_s=0.0, kind="slow_batch", duration_s=30.0),
            ),
        ).to_dict()
        status, payload = _admin_post(
            gateway, "/v1/admin/chaos", {"model": "challenger", "plan": plan}
        )
        assert status == 200
        assert payload["model"] == "challenger"
        assert gateway.fleet.entry("challenger").server.chaos is not None
        assert gateway.fleet.entry("champion").server.chaos is None
        # Old selector-less form still arms the default entry's server.
        status, payload = _admin_post(gateway, "/v1/admin/chaos", plan)
        assert status == 200
        assert payload["model"] == "champion"
        assert gateway.fleet.entry("champion").server.chaos is not None
        # Re-arming moved the injector off the previously armed server.
        assert gateway.fleet.entry("challenger").server.chaos is None
        gateway.disarm_chaos()

    def test_gateway_owns_only_entries_it_started(self):
        running = make_server("pre@1").start()
        try:
            fleet = ModelFleet(
                [
                    ModelEntry("prestarted", running),
                    ModelEntry("fresh", make_server("fresh@1")),
                ]
            )
            with ServingGateway(fleet) as gateway:
                assert gateway.ready
                fresh = fleet.entry("fresh").server
                assert fresh.running
            assert not fresh.running
            assert running.running and running.accepting
        finally:
            running.stop()


class TestSingleServerCompatibility:
    def test_bare_server_maps_onto_one_entry_fleet(self):
        server = make_server("solo@1")
        gateway = ServingGateway(server, baseline="LR")
        assert gateway.fleet.names == ("default",)
        assert gateway.server is server
        assert gateway.model_id == "solo@1"
        assert gateway.baseline == "LR"
        with gateway:
            client = ServingClient(gateway.url, deadline_s=10)
            result = client.predict("compat")
            assert result.served_by.model == "default"
            assert result.model_id == "solo@1"


class TestDeprecatedDictShim:
    def test_predict_result_dict_access_warns(self):
        raw = {
            "label": "IA",
            "latency_ms": 1.0,
            "model_id": "m@1",
            "served_by": {"model": "default", "weights_version": 2},
        }
        result = PredictResult.from_raw(raw)
        assert result.label == "IA"
        assert result.served_by.weights_version == 2
        with pytest.warns(DeprecationWarning, match="dict-style access"):
            assert result["label"] == "IA"
        with pytest.warns(DeprecationWarning):
            assert "label" in result
        with pytest.warns(DeprecationWarning):
            assert result.get("missing", "fallback") == "fallback"

    def test_batch_result_dict_access_warns(self):
        raw = {
            "model_id": "m@1",
            "served_by": {"model": "default", "weights_version": 0},
            "predictions": [{"label": "IA", "latency_ms": 0.5}],
        }
        batch = PredictBatchResult.from_raw(raw)
        assert len(batch) == 1
        assert batch.predictions[0].label == "IA"
        assert batch.predictions[0].served_by.model == "default"
        with pytest.warns(DeprecationWarning, match="dict-style access"):
            assert batch["model_id"] == "m@1"
        with pytest.warns(DeprecationWarning):
            assert "predictions" in batch

    def test_typed_access_does_not_warn(self):
        import warnings

        result = PredictResult.from_raw({"label": "IA", "latency_ms": 1.0})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert result.label == "IA"
            assert result.probabilities is None
            assert result.served_by is None
            assert result.raw["label"] == "IA"


def _admin_post(gateway, path: str, payload: dict) -> tuple[int, dict]:
    import json
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        gateway.url + path,
        data=json.dumps(payload).encode(),
        headers={
            "Content-Type": "application/json",
            "X-Admin-Token": gateway.admin_token,
        },
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        with error:
            return error.code, json.loads(error.read())
