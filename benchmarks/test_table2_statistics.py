"""E1 — Table II: dataset statistics (build + measure).

Regenerates the paper's Table II and asserts every number matches
exactly — the corpus generator is calibrated to the published statistics.
"""

from repro.core.dataset import HolistixDataset
from repro.experiments.table2 import format_table2, run_table2


def test_table2_statistics(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: run_table2(dataset), rounds=3, iterations=1
    )
    print("\n" + format_table2(result))
    assert result.matches_paper_exactly()


def test_full_build_from_scratch(benchmark):
    ds = benchmark.pedantic(HolistixDataset.build, rounds=1, iterations=1)
    stats = ds.statistics()
    assert stats.total_posts == 1420
    assert stats.total_words == 37082
