"""§V future work, benchmarked: multi-label, span prediction, interactions.

Not a paper table — the conclusion only *proposes* these — but the
implementations exist, so the bench pins their quality and cost.
"""

from repro.core.interactions import analyze_interactions
from repro.core.labels import DIMENSIONS
from repro.explain.span_predictor import SpanPredictor, evaluate_span_predictions
from repro.ml.multilabel import OneVsRestClassifier, multilabel_metrics
from repro.text.tfidf import TfidfVectorizer


def test_multilabel_classification(benchmark, dataset):
    split = dataset.fixed_split()
    vectorizer = TfidfVectorizer(max_features=3000)
    x_train = vectorizer.fit_transform(split.train.texts)
    x_test = vectorizer.transform(split.test.texts)
    train_sets = split.train.multi_label_sets()
    test_sets = split.test.multi_label_sets()

    def run():
        model = OneVsRestClassifier(list(DIMENSIONS)).fit(x_train, train_sets)
        return multilabel_metrics(
            test_sets, model.predict(x_test), list(DIMENSIONS)
        )

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nmulti-label: subset={metrics.subset_accuracy:.3f} "
        f"hamming={metrics.hamming_loss:.3f} microF1={metrics.micro_f1:.3f}"
    )
    # The paper's motivation for multi-label: the overlapping dimensions
    # are recoverable as a set even when the dominant one is ambiguous —
    # so the multi-label micro-F1 clearly beats the single-label accuracy
    # (~0.61 for the same features and split).
    assert metrics.micro_f1 > 0.7
    assert metrics.hamming_loss < 0.2


def test_span_prediction(benchmark, dataset):
    split = dataset.fixed_split()
    instances = [i for i in split.test if not i.metadata.get("noisy")][:80]
    predictor = SpanPredictor()

    def run():
        predictions = [
            predictor.predict(inst.text, inst.label) for inst in instances
        ]
        return evaluate_span_predictions(
            predictions, [inst.span_text for inst in instances]
        )

    evaluation = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nspan prediction: rouge1={evaluation.rouge1_f1:.3f} "
        f"hit-rate={evaluation.exact_sentence_rate:.3f}"
    )
    assert evaluation.rouge1_f1 > 0.6
    assert evaluation.exact_sentence_rate > 0.7


def test_interaction_analysis(benchmark, dataset):
    report = benchmark.pedantic(
        lambda: analyze_interactions(dataset), rounds=3, iterations=1
    )
    print(
        f"\ninteractions: central={report.most_central} "
        f"pairs={report.strongest_pairs[:3]} reciprocity={report.reciprocity:.2f}"
    )
    # §IV's overlap story: EA sits at the centre of the co-occurrence
    # structure and the EA-SA edge is among the strongest.
    assert report.most_central == "EA"
    assert any(
        {a, b} == {"EA", "SA"} for a, b, _ in report.strongest_pairs[:3]
    )
