"""E5 — Fleiss' kappa = 75.92%: the two-annotator agreement study."""

from repro.experiments.kappa import format_kappa, run_kappa
from repro.experiments.paper_reference import PAPER_KAPPA_PERCENT


def test_kappa_agreement(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: run_kappa(dataset), rounds=3, iterations=1
    )
    print("\n" + format_kappa(result))
    # Within three kappa points of the published 75.92.
    assert abs(result.report.kappa_percent - PAPER_KAPPA_PERCENT) < 3.0
    # The paper's qualitative claim (§IV): confusions concentrate on the
    # Emotional boundary.
    top_pairs = [pair for pair, _ in result.report.top_confusions(3)]
    assert any("EA" in pair for pair in top_pairs)
