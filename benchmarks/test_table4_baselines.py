"""E3 — Table IV: the nine-baseline comparison with K-fold CV.

Runs the full evaluation protocol (reduced sizing by default; export
``REPRO_FULL=1`` for the paper's 10-fold protocol) and asserts the
paper's comparative claims:

* every transformer beats every traditional baseline... is the paper's
  clean separation; on the synthetic substrate we assert the slightly
  weaker, stable version of each claim (tier medians, best/worst, and
  per-class orderings).
"""

import numpy as np

from repro.core.labels import WellnessDimension
from repro.experiments.table4 import (
    TRADITIONAL_NAMES,
    TRANSFORMER_NAMES,
    format_table4,
    run_table4,
)


def test_table4_baselines(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: run_table4(dataset), rounds=1, iterations=1
    )
    print("\n" + format_table4(result))

    acc = {name: result.accuracy_of(name) for name in result.scores}

    # Claim 1 (tiers): transformers as a group beat traditional ML as a
    # group — compare medians, the robust version of the paper's clean
    # separation.
    traditional_median = float(np.median([acc[n] for n in TRADITIONAL_NAMES]))
    transformer_median = float(np.median([acc[n] for n in TRANSFORMER_NAMES]))
    assert transformer_median > traditional_median

    # Claim 2: Gaussian NB anchors the bottom of the table.
    assert acc["Gaussian NB"] == min(acc.values())

    # Claim 3: the best transformer clearly beats the best traditional
    # baseline.
    assert max(acc[n] for n in TRANSFORMER_NAMES) > max(
        acc[n] for n in TRADITIONAL_NAMES
    )

    # Claim 4 (per-class difficulty): EA and SpiA are the hard classes —
    # for every baseline, the minimum per-class F1 is one of EA/SpiA/IA,
    # and VA/PA/SA sit above EA.
    hard = {
        WellnessDimension.EMOTIONAL,
        WellnessDimension.SPIRITUAL,
        WellnessDimension.INTELLECTUAL,
    }
    easy = (
        WellnessDimension.VOCATIONAL,
        WellnessDimension.PHYSICAL,
        WellnessDimension.SOCIAL,
    )
    ea = WellnessDimension.EMOTIONAL
    for name, scores in result.scores.items():
        f1 = {dim: scores.per_class[dim][2] for dim in scores.per_class}
        # Gaussian NB is pathological on dense TF-IDF (the paper's GNB row
        # also collapses SA to 0.38, its near-worst class); the difficulty
        # ordering is asserted for the non-degenerate models.
        if name != "Gaussian NB":
            worst = min(f1, key=f1.get)
            assert worst in hard, (name, worst)
        assert np.mean([f1[d] for d in easy]) > f1[ea], name

    # Claim 5: MentalBERT is competitive with the best (within a couple
    # points of the top accuracy) — the paper's "top choice".
    assert acc["MentalBERT"] >= max(acc.values()) - 0.05
