"""Shared benchmark fixtures: build the corpus once per session."""

from __future__ import annotations

import pytest

from repro.core.dataset import HolistixDataset


@pytest.fixture(scope="session")
def dataset() -> HolistixDataset:
    """The full calibrated 1,420-post Holistix build."""
    return HolistixDataset.build()
