"""Shared benchmark fixtures: build the corpus once per session."""

from __future__ import annotations

import os

import pytest

from repro.core.dataset import HolistixDataset


@pytest.fixture(scope="session", autouse=True)
def _isolated_pretrain_cache(tmp_path_factory):
    """Point the on-disk pretraining cache at a per-session scratch dir."""
    os.environ["REPRO_PRETRAIN_CACHE"] = str(
        tmp_path_factory.mktemp("pretrain-cache")
    )
    yield
    os.environ.pop("REPRO_PRETRAIN_CACHE", None)


@pytest.fixture(scope="session")
def dataset() -> HolistixDataset:
    """The full calibrated 1,420-post Holistix build."""
    return HolistixDataset.build()
