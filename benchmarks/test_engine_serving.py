"""Serving-path benchmark: micro-batched throughput and cache effect.

Not a paper table — this pins the cost of the `repro.engine` serving
stack: end-to-end latency of the micro-batching server over a fitted
baseline, and the speedup the LRU prediction cache buys on repeated
traffic.
"""

import threading

from repro.core.pipeline import WellnessClassifier
from repro.engine.server import InferenceServer


def test_server_throughput(benchmark, dataset):
    split = dataset.fixed_split()
    classifier = WellnessClassifier("LR").fit(split.train)
    texts = split.test.texts
    direct = classifier.predict(texts)
    classifier.engine.invalidate()

    def run():
        classifier.engine.invalidate()
        server = InferenceServer(
            classifier.engine, max_batch_size=32, max_wait_ms=1.0
        )
        with server:
            chunks = [texts[i::4] for i in range(4)]
            outputs = [None] * 4

            def client(i):
                outputs[i] = server.predict(chunks[i])

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        return server, outputs

    server, outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    served = [r.label for chunk in outputs for r in chunk]
    expected = [label for i in range(4) for label in direct[i::4]]
    assert served == expected
    stats = server.stats
    print(
        f"\nserving: {stats.requests} requests in {stats.batches} batches "
        f"(mean batch {stats.mean_batch_size:.1f}); "
        f"throughput {stats.throughput():,.0f} req/s; "
        f"latency mean {stats.mean_latency_ms:.2f} ms "
        f"p95 {stats.latency_percentile(95):.2f} ms"
    )
    assert stats.requests == len(texts)
    # Coalescing must actually batch: far fewer forward passes than requests.
    assert stats.batches < stats.requests


def test_cache_speedup_on_repeated_traffic(benchmark, dataset):
    split = dataset.fixed_split()
    classifier = WellnessClassifier("LR").fit(split.train)
    texts = split.test.texts[:100]
    engine = classifier.engine
    engine.invalidate()
    engine.predict_proba(texts)  # warm

    def run():
        return engine.predict_proba(texts)

    benchmark.pedantic(run, rounds=3, iterations=1)
    stats = engine.stats
    print(
        f"\ncache: {stats.cache_hits} hits / {stats.cache_misses} misses "
        f"(hit rate {stats.hit_rate:.0%})"
    )
    # Warm-up misses once; every benchmarked round is pure cache hits
    # (exactly 50% when --benchmark-disable collapses to a single round).
    assert stats.hit_rate >= 0.5
    assert stats.cache_hits >= len(texts)
