"""E8 — ablations: domain pretraining and the lexical-overlap mechanism."""

from repro.experiments.ablation import (
    format_hardness_ablation,
    format_pretraining_ablation,
    run_hardness_ablation,
    run_pretraining_ablation,
)


def test_pretraining_ablation(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: run_pretraining_ablation(dataset), rounds=1, iterations=1
    )
    print("\n" + format_pretraining_ablation(result))
    # Domain pretraining must not lose to random initialisation (the
    # MentalBERT mechanism), modulo small-sample noise.
    assert result.domain_mlm >= result.no_pretrain - 0.03


def test_hardness_ablation(benchmark):
    result = benchmark.pedantic(run_hardness_ablation, rounds=1, iterations=1)
    print("\n" + format_hardness_ablation(result))
    # Removing the overlap machinery makes EA dramatically easier —
    # the §IV claim inverted.
    assert result.overlap_explains_ea()
    assert result.ea_f1_all_clear > result.ea_f1_full_corpus + 0.2
    assert result.accuracy_all_clear > result.accuracy_full_corpus
