"""E7 — Fig. 2: the annotation framework, executed end to end.

Scrape the simulated Beyond Blue forum, run the 2,000 -> 1,420 cleaning
funnel, annotate with two simulated annotators, adjudicate.
"""

from repro.experiments.figure2 import format_figure2, run_figure2


def test_figure2_annotation_framework(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: run_figure2(dataset), rounds=1, iterations=1
    )
    print("\n" + format_figure2(result))
    stages = dict(result.funnel.stages())
    assert stages["raw posts"] == 2000
    assert stages["after empty removal"] == 1880
    assert stages["after deduplication"] == 1700
    assert stages["after length filter"] == 1570
    assert stages["after topic filter"] == 1420
    assert result.clean_matches_gold
    assert result.n_guidelines == 7
    assert result.n_perplexity_rules == 6
