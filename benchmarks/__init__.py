"""Benchmark suite (package so module basenames never clash with tests/)."""
