"""Persistent performance benchmark harness.

Runs named perf scenarios and writes one ``BENCH_<scenario>.json``
record per scenario (timestamp, git SHA, CPU count, timings, docs/sec),
comparing each fresh run against the previous record so regressions are
visible — in CI (the benchmark-smoke job runs ``--quick`` and uploads
the records as artifacts) and locally::

    PYTHONPATH=src python -m benchmarks.harness            # all scenarios
    PYTHONPATH=src python -m benchmarks.harness tfidf      # one scenario
    PYTHONPATH=src python -m benchmarks.harness --quick    # CI sizing
    PYTHONPATH=src python -m benchmarks.harness --check    # exit 1 on regression

Scenarios
---------
``tfidf``
    Legacy dense TF-IDF (re-tokenises on every pass, fills a dense
    matrix) vs the sparse CSR pipeline with the shared tokenisation
    cache.  Primary metric: cached-transform docs/sec.
``traditional``
    Train + predict each traditional Table IV baseline on dense vs
    sparse features; asserts predictions are identical.
``engine``
    Batched inference docs/sec through ``WellnessClassifier.predict``
    (the ``PredictionEngine`` path).
``table4``
    The ``holistix-experiments`` CLI over the experiment suite, serial
    vs ``--jobs 4``, each in a fresh subprocess sharing one scratch
    pretraining disk cache.  Speedup scales with available cores
    (recorded as ``cpu_count``); on a single-core runner expect ~1.0x.
``transformer``
    The neural substrate: pretraining and fine-tuning steps/sec with
    the fused autograd kernels vs the composed-op fallback
    (``use_fused_ops(False)``), plus p50 single-text inference latency
    and padding saved by length-bucketed training batches.
``serving_load``
    Closed-loop concurrent clients against the replicated
    ``InferenceServer`` over a fixed-service-time backend: throughput
    and p50/p95/p99 at 1 vs 4 workers (primary metric: the 4-worker
    scaling ratio), plus shed rate when a burst overloads an
    undersized shed-mode server.
``serving_http``
    The same closed-loop workload driven through the HTTP
    ``ServingGateway`` on loopback vs straight in-process
    ``InferenceServer`` calls; primary metric is the HTTP/in-process
    throughput ratio (the cost of the network boundary).
``serving_mp``
    The multi-process ``ProcessInferenceServer``: closed-loop clients
    over the fixed-service-time stub at 1 vs 4 worker processes
    (primary metric: the 4-process scaling ratio — dispatch, IPC, and
    result marshalling must not serialise independent workers), plus a
    GIL-bound pure-Python spin workload compared thread- vs
    process-side.  The spin ratio is recorded ungated: it needs real
    spare cores to exceed 1.0 and is ~1.0 on a single-core runner
    (``cpu_count`` is in every record).
``serving_tail``
    Tail latency under *open-loop* load (``repro.loadgen``): a seeded
    Poisson arrival schedule at fixed offered rate against the threaded
    server, with latency measured from each request's **intended** send
    time (primary metric: open-loop p99, lower is better).  Also drives
    the HTTP gateway open loop through ``ServingClient``, and replays
    an injected whole-server stall under both closed- and open-loop
    measurement to record the coordinated-omission gap — the factor by
    which the closed-loop methodology under-reports p99.  Full latency
    histograms land in ``serving_tail_histogram.json`` next to the
    record.
``serving_chaos``
    Replays the committed fault plan (``benchmarks/plans/
    serving_chaos.json`` — a worker SIGKILL, a worker stall, and a
    burst of socket-level response faults, all regenerated from a
    recorded seed and verified against the file) against the full
    ``ProcessInferenceServer`` → ``ServingGateway`` → resilient
    ``ServingClient`` stack under open-loop Poisson load.  Gates
    chaos-leg availability >= 0.99 (deadline sheds credited back),
    post-fault recovery p99 within 2x the clean baseline, at least one
    supervised worker respawn, every planned fault kind applied, and
    zero orphaned worker processes after shutdown.  Primary metric:
    chaos-leg availability (higher is better).

Timings come from ``_timeit_median``: every measured callable gets
discarded warm-up iterations followed by median-of-k timing, so
run-to-run noise on shared CI runners doesn't trip the ``--check``
regression gate.

See ``docs/BENCHMARKING.md`` for the record schema and how CI
interprets regressions.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import statistics
import subprocess
import sys
import threading
import time
from collections import Counter
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT_DIR = REPO_ROOT / "benchmarks" / "records"

# A fresh record's primary metric may be this much worse than the
# previous record before ``--check`` calls it a regression; benchmarks
# on shared runners are noisy.
REGRESSION_TOLERANCE = 0.25

# Per-scenario overrides.  ``serving_tail`` gates an *absolute* p99 —
# unlike the within-run ratios every other scenario uses — and a p99 is
# by construction a handful of worst samples, so it needs the 2x-style
# tolerance tail gates get in practice.  A genuine tail regression (a
# stall, a lost replica, an admission bug) moves p99 by an order of
# magnitude, not 2x.
SCENARIO_TOLERANCE = {
    "serving_tail": 0.5,
    # Availability is gated absolutely (>= 0.99) inside the scenario;
    # the record comparison just needs to flag drift, not absorb noise.
    "serving_chaos": 0.02,
    # The fleet control plane may cost at most 5% of single-model
    # throughput; the ratio is measured within one run so the gate
    # holds across hardware.
    "serving_fleet": 0.05,
}


# ----------------------------------------------------------------------
# Scenario helpers
# ----------------------------------------------------------------------
def _corpus_texts(repeat: int = 1) -> list[str]:
    from repro.core.dataset import HolistixDataset

    texts = HolistixDataset.build().texts
    return texts * repeat


def _legacy_dense_tfidf(vectorizer, documents) -> np.ndarray:
    """The pre-sparse transform algorithm, kept verbatim as the baseline.

    Re-analyses every document (no token cache) and fills a dense
    ``(n_docs, n_features)`` matrix one term at a time — exactly what
    ``TfidfVectorizer.transform`` did before the CSR rework.
    """
    docs = list(documents)
    vocab = vectorizer._vocab
    matrix = np.zeros((len(docs), vectorizer.n_features), dtype=np.float64)
    for i, doc in enumerate(docs):
        counts = Counter(t for t in vectorizer._analyze(doc) if t in vocab)
        for term, tf in counts.items():
            weight = (
                1.0 + math.log(tf) if vectorizer.sublinear_tf else float(tf)
            )
            matrix[i, vocab[term]] = weight
    matrix *= vectorizer.idf
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    np.divide(matrix, norms, out=matrix, where=norms > 0)
    return matrix


def _timeit_median(fn, repeats: int = 3, *, warmup: int = 1) -> float:
    """Median wall-clock of ``repeats`` runs after ``warmup`` discarded runs.

    Warm-up absorbs one-time costs (allocator growth, import side
    effects, cache fills) and the median is robust to a single noisy
    run — together they keep identical-SHA reruns within a few percent
    instead of the ~20% swings a single cold measurement shows.
    """
    for _ in range(max(0, warmup)):
        fn()
    times = []
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def scenario_tfidf(quick: bool) -> dict:
    from repro.text.tfidf import TfidfVectorizer

    texts = _corpus_texts(repeat=1 if quick else 4)
    repeats = 2 if quick else 3

    legacy_vec = TfidfVectorizer(max_features=3000)
    legacy_vec.fit(texts)
    legacy_s = _timeit_median(
        lambda: _legacy_dense_tfidf(legacy_vec, texts), repeats
    )

    sparse_vec = TfidfVectorizer(max_features=3000, sparse_output=True)
    started = time.perf_counter()
    sparse_vec.fit_transform(texts)
    fit_transform_s = time.perf_counter() - started
    sparse_s = _timeit_median(lambda: sparse_vec.transform(texts), repeats)

    return {
        "n_docs": len(texts),
        "timings": {
            "legacy_dense_transform_s": legacy_s,
            "sparse_fit_transform_s": fit_transform_s,
            "sparse_cached_transform_s": sparse_s,
        },
        "metrics": {
            "transform_docs_per_sec": len(texts) / sparse_s,
            "transform_speedup_vs_legacy": legacy_s / sparse_s,
        },
    }


def scenario_traditional(quick: bool) -> dict:
    from repro.core.labels import DIMENSIONS
    from repro.core.dataset import HolistixDataset
    from repro.engine.registry import create_traditional_model, traditional_baselines
    from repro.text.tfidf import TfidfVectorizer

    dataset = HolistixDataset.build()
    texts, labels = dataset.texts, dataset.labels
    targets = np.asarray([DIMENSIONS.index(label) for label in labels])

    dense = TfidfVectorizer(max_features=3000).fit_transform(texts)
    sparse = TfidfVectorizer(max_features=3000, sparse_output=True).fit_transform(
        texts
    )

    timings: dict[str, float] = {}
    total_dense = total_sparse = 0.0
    for name in traditional_baselines():
        key = name.lower().replace(" ", "_")
        started = time.perf_counter()
        dense_model = create_traditional_model(name, seed=7).fit(dense, targets)
        dense_pred = dense_model.predict(dense)
        elapsed = time.perf_counter() - started
        timings[f"{key}_dense_s"] = elapsed
        total_dense += elapsed
        started = time.perf_counter()
        sparse_model = create_traditional_model(name, seed=7).fit(sparse, targets)
        sparse_pred = sparse_model.predict(sparse)
        elapsed = time.perf_counter() - started
        timings[f"{key}_sparse_s"] = elapsed
        total_sparse += elapsed
        if not np.array_equal(dense_pred, sparse_pred):
            raise AssertionError(f"{name}: sparse/dense predictions diverge")

    return {
        "n_docs": len(texts),
        "timings": timings,
        "metrics": {
            "sparse_speedup_vs_dense": total_dense / total_sparse,
            "train_predict_docs_per_sec": len(texts)
            * len(traditional_baselines())
            / total_sparse,
            "predictions_identical": True,
        },
    }


def scenario_engine(quick: bool) -> dict:
    from repro.core.dataset import HolistixDataset
    from repro.core.pipeline import WellnessClassifier

    dataset = HolistixDataset.build()
    split = dataset.fixed_split()
    classifier = WellnessClassifier("LR").fit(split.train)
    texts = split.test.texts * (3 if quick else 10)
    repeats = 3 if quick else 5

    def cold_pass() -> None:
        # Drop the LRU first so every repeat really recomputes.
        classifier.engine.invalidate()
        classifier.predict(texts)

    cold_s = _timeit_median(cold_pass, repeats)
    classifier.predict(texts)  # ensure the cache is fully populated

    def warm_block() -> None:
        # One warm pass is sub-millisecond; time ten per sample so the
        # measurement is not dominated by timer noise.
        for _ in range(10):
            classifier.predict(texts)

    warm_s = _timeit_median(warm_block, repeats) / 10.0

    return {
        "n_docs": len(texts),
        "timings": {"batch_cold_s": cold_s, "batch_warm_s": warm_s},
        "metrics": {
            "cache_speedup": cold_s / warm_s,
            "docs_per_sec": len(texts) / cold_s,
            "cached_docs_per_sec": len(texts) / warm_s,
        },
    }


def scenario_table4(quick: bool) -> dict:
    """Time the real ``holistix-experiments`` CLI, serial vs ``--jobs 4``.

    Each measurement is a fresh subprocess so neither run inherits the
    other's in-process caches.  Both share one scratch pretraining disk
    cache, warmed by an unmeasured pass in full mode, so serial and
    parallel see identical cache state and the comparison isolates the
    execution strategy.
    """
    import re
    import tempfile

    suite = ["E1", "E5", "E6", "E7"] if quick else [f"E{i}" for i in range(1, 9)]

    def strip_timing(output: str) -> str:
        return "\n".join(
            line for line in output.splitlines() if not line.startswith("[")
        )

    with tempfile.TemporaryDirectory(prefix="holistix-bench-") as scratch:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env["REPRO_PRETRAIN_CACHE"] = scratch

        def run_cli(extra: list[str]) -> tuple[float, str]:
            started = time.perf_counter()
            proc = subprocess.run(
                [sys.executable, "-m", "repro.experiments.runner", "run"]
                + suite
                + extra,
                capture_output=True,
                text=True,
                env=env,
                cwd=REPO_ROOT,
                check=True,
            )
            return time.perf_counter() - started, proc.stdout

        if not quick:
            run_cli([])  # warm-up: populate the pretraining disk cache
        serial_s, serial_out = run_cli([])
        jobs4_s, parallel_out = run_cli(["--jobs", "4"])

    if strip_timing(serial_out) != strip_timing(parallel_out):
        raise AssertionError("parallel run produced different reports")
    per_experiment = {
        f"{match.group(1)}_s": float(match.group(2))
        for match in re.finditer(r"\[(E\d+) took ([\d.]+)s\]", serial_out)
    }

    return {
        "suite": suite,
        "timings": {
            "serial_s": serial_s,
            "jobs4_s": jobs4_s,
            **per_experiment,
        },
        "metrics": {
            "jobs4_speedup": serial_s / jobs4_s,
            "jobs4_wall_clock_reduction_s": serial_s - jobs4_s,
            "reports_identical": True,
        },
    }


def scenario_transformer(quick: bool) -> dict:
    """Benchmark the neural substrate end to end.

    Measures pretraining and fine-tuning steps/sec on a Table IV-sized
    model, the same fine-tuning workload with the fused autograd
    kernels disabled (``use_fused_ops(False)`` routes every LayerNorm,
    Linear, and attention-score op through the composed primitive-op
    fallback), p50/p95 single-text inference latency through the
    prediction engine, and the padding saved by length-bucketed
    training batches.  The primary metric is the fused-vs-composed
    steps/sec ratio, which is hardware-independent.
    """
    from dataclasses import replace

    from repro.core.dataset import HolistixDataset
    from repro.models.config import MODEL_CONFIGS
    from repro.models.pretrain import build_pretraining_corpus, pretrain
    from repro.models.trainer import Trainer
    from repro.nn.batching import padded_token_count, window_bucketed_batches
    from repro.nn.functional import use_fused_ops
    from repro.text.vocab import Vocabulary

    dataset = HolistixDataset.build()
    n_train = 256 if quick else 512
    texts = dataset.texts[:n_train]
    labels = dataset.labels[:n_train]
    corpus = build_pretraining_corpus("mental_health", size=400, seed=101)
    vocab = Vocabulary.build(corpus + texts, max_size=2000)
    config = replace(
        MODEL_CONFIGS["BERT"],
        pretrain_steps=0,
        epochs=2 if quick else 3,
    )
    pretrain_steps = 30 if quick else 100

    def timed_finetune() -> tuple[Trainer, float, int]:
        """Median-of-k fine-tune wall-clock (fresh Trainer per run)."""
        last: list[Trainer] = []

        def one_fit() -> None:
            trainer = Trainer(
                config, vocab, use_pretraining_cache=False, bucket_window=8
            )
            trainer.fit(texts, labels)
            last[:] = [trainer]

        elapsed = _timeit_median(one_fit, repeats=2, warmup=1)
        return last[0], elapsed, len(last[0].result.train_losses)

    # Fused fine-tune (the production path) and the composed fallback;
    # both go through the warm-up + median timer so the CI-gated ratio
    # isn't built from two single cold measurements.
    trainer, fused_s, n_steps = timed_finetune()
    with use_fused_ops(False):
        _, composed_s, composed_steps = timed_finetune()

    # Pretraining steps/sec (MLM objective, bucketed batches).
    pretrain_model = Trainer(
        config, vocab, use_pretraining_cache=False
    ).model
    started = time.perf_counter()
    pretrain(
        pretrain_model,
        corpus,
        steps=pretrain_steps,
        objective="mlm",
        seed=3,
    )
    pretrain_s = time.perf_counter() - started

    # Padding saved by bucketing, on the actual training lengths.
    rows = [trainer.model.encode_ids(t) for t in texts]
    lengths = [len(r) for r in rows]
    order = list(range(len(rows)))
    plain_tokens = padded_token_count(
        lengths, window_bucketed_batches(order, lengths, config.batch_size, window=1)
    )
    bucketed_tokens = padded_token_count(
        lengths, window_bucketed_batches(order, lengths, config.batch_size, window=8)
    )

    # Inference latency: p50/p95 over unique single-text requests.
    probe = dataset.texts[n_train : n_train + (30 if quick else 60)]
    trainer.engine.invalidate()
    latencies = []
    for text in probe:
        started = time.perf_counter()
        trainer.predict([text])
        latencies.append(time.perf_counter() - started)
    latencies.sort()
    p50_ms = 1000 * latencies[len(latencies) // 2]
    p95_ms = 1000 * latencies[int(len(latencies) * 0.95)]
    trainer.engine.invalidate()
    batch_s = _timeit_median(
        lambda: (trainer.engine.invalidate(), trainer.predict(list(probe))),
        2 if quick else 3,
    )

    return {
        "n_docs": n_train,
        "timings": {
            "finetune_fused_s": fused_s,
            "finetune_composed_s": composed_s,
            "pretrain_s": pretrain_s,
            "inference_p50_ms": p50_ms,
            "inference_p95_ms": p95_ms,
            "inference_batch_s": batch_s,
        },
        "metrics": {
            "fused_speedup": (composed_s / composed_steps) / (fused_s / n_steps),
            "finetune_steps_per_sec": n_steps / fused_s,
            "pretrain_steps_per_sec": pretrain_steps / pretrain_s,
            "inference_docs_per_sec": len(probe) / batch_s,
            "bucketed_padding_saved": 1.0 - bucketed_tokens / plain_tokens,
        },
    }


class FixedServiceBackend:
    """2 ms per batch + 0.25 ms per item, probabilities uniform.

    The fixed-service-time stub both serving scenarios measure against:
    it isolates the serving layer — admission, batching, dispatch,
    stats, and (for ``serving_http``) the HTTP hop — from model speed,
    and models the GIL-releasing inference kernels (BLAS matmuls,
    native backends) real traffic runs on.
    """

    n_classes = 6

    def __init__(self, per_batch_ms=2.0, per_item_ms=0.25):
        self.per_batch_ms = per_batch_ms
        self.per_item_ms = per_item_ms

    def proba_batch(self, texts):
        time.sleep((self.per_batch_ms + self.per_item_ms * len(texts)) / 1000.0)
        return np.full((len(texts), 6), 1.0 / 6.0)


def _closed_loop_measure(
    server, one_request, *, n_clients: int, warmup_s: float, measure_s: float
) -> dict:
    """Closed-loop clients calling ``one_request`` until time is up.

    Shared by the ``serving_load`` and ``serving_http`` scenarios so the
    measurement methodology (warm-up, snapshot-delta throughput, the
    measurement window) cannot drift between them.  Throughput comes
    from the server's stats delta; the latency percentiles come from
    the *caller's* clock around each request, so for the HTTP scenario
    they include everything the client pays (connection, JSON, parsing,
    response write), not just the engine-internal queue time.
    """
    done = threading.Event()
    client_errors: list[Exception] = []
    all_latencies: list[tuple[float, float]] = []  # (completed_at, seconds)
    collect_lock = threading.Lock()

    def client(i: int) -> None:
        n = 0
        local: list[tuple[float, float]] = []
        try:
            while not done.is_set():
                started = time.perf_counter()
                one_request(f"client {i} request {n}")
                finished = time.perf_counter()
                local.append((finished, finished - started))
                n += 1
        except Exception as error:  # noqa: BLE001 - recorded, fails the run
            client_errors.append(error)
        finally:
            with collect_lock:
                all_latencies.extend(local)

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(n_clients)
    ]
    for t in threads:
        t.start()
    time.sleep(warmup_s)
    before = server.stats.snapshot()
    started = time.perf_counter()
    time.sleep(measure_s)
    after = server.stats.snapshot()
    elapsed = time.perf_counter() - started
    done.set()
    for t in threads:
        t.join(timeout=10)
    if client_errors:
        raise AssertionError(f"closed-loop client failed: {client_errors[0]!r}")
    window = sorted(
        seconds
        for completed_at, seconds in all_latencies
        if started <= completed_at <= started + elapsed
    )

    def percentile_ms(q: float) -> float:
        if not window:
            return 0.0
        idx = min(len(window) - 1, int(round(q / 100.0 * (len(window) - 1))))
        return 1000.0 * window[idx]

    return {
        "throughput": (after.requests - before.requests) / elapsed,
        "p50_ms": percentile_ms(50),
        "p95_ms": percentile_ms(95),
        "p99_ms": percentile_ms(99),
        "mean_batch": after.mean_batch_size,
        "requests": after.requests,
    }


def scenario_serving_load(quick: bool) -> dict:
    """Closed-loop load generation against the replicated InferenceServer.

    Concurrent clients each submit one request, wait for the result, and
    repeat; the server coalesces the backlog into batches across its
    worker replicas over the :class:`FixedServiceBackend` stub.  The
    primary metric is ``worker_scaling``: throughput with 4 workers over
    throughput with 1, which must stay ≥ 2× (4 concurrent batches amortise
    per-batch overhead that a single worker pays serially).

    A second, deliberately undersized server is then driven past
    saturation in shed mode to record the load-shedding behaviour
    (``shed_rate``, p99 under overload), and in full mode a real fitted
    LR baseline is served end to end for an absolute docs/sec reference.
    """
    from repro.engine.engine import PredictionEngine
    from repro.engine.server import InferenceServer, ServerOverloaded

    n_clients = 24 if quick else 32
    warmup_s = 0.15 if quick else 0.5
    measure_s = 0.6 if quick else 3.0

    def run_closed_loop(workers: int) -> dict:
        engine = PredictionEngine(
            FixedServiceBackend(), model_id="bench", cache_size=0
        )
        server = InferenceServer(
            engine,
            workers=workers,
            max_batch_size=8,
            max_wait_ms=0.5,
            max_queue=256,
            overload="block",
        )
        with server:
            return _closed_loop_measure(
                server,
                lambda text: server.submit(text).result(timeout=30),
                n_clients=n_clients,
                warmup_s=warmup_s,
                measure_s=measure_s,
            )

    single = run_closed_loop(1)
    scaled = run_closed_loop(4)

    # Overload: an open-loop burst against an undersized shed-mode server.
    shed_server = InferenceServer(
        PredictionEngine(
            FixedServiceBackend(per_batch_ms=5.0), model_id="shed", cache_size=0
        ),
        workers=1,
        max_batch_size=4,
        max_wait_ms=0.0,
        max_queue=8,
        overload="shed",
    )
    burst = 200 if quick else 1000
    admitted = []
    with shed_server:
        for i in range(burst):
            try:
                admitted.append(shed_server.submit(f"burst {i}"))
            except ServerOverloaded:
                pass
            if i % 20 == 19:
                time.sleep(0.005)  # drip so the worker drains a little
        for f in admitted:
            f.result(timeout=30)
    shed_snap = shed_server.stats.snapshot()

    result = {
        "n_clients": n_clients,
        "timings": {
            "measure_window_s": measure_s,
            "workers1_p50_ms": single["p50_ms"],
            "workers1_p95_ms": single["p95_ms"],
            "workers4_p50_ms": scaled["p50_ms"],
            "workers4_p95_ms": scaled["p95_ms"],
            "workers4_p99_ms": scaled["p99_ms"],
            "overload_p99_ms": shed_snap.latency_percentile(99),
        },
        "metrics": {
            "worker_scaling": scaled["throughput"] / single["throughput"],
            "workers1_req_per_sec": single["throughput"],
            "workers4_req_per_sec": scaled["throughput"],
            "workers1_mean_batch": single["mean_batch"],
            "workers4_mean_batch": scaled["mean_batch"],
            "shed_rate": shed_snap.shed_rate,
            "shed_requests": shed_snap.shed,
            "overload_served": shed_snap.requests,
        },
    }

    if not quick:
        # Absolute end-to-end reference: a real fitted baseline served
        # through 2 worker replicas (cache disabled so every request
        # pays the TF-IDF + linear-model cost).
        from repro.core.dataset import HolistixDataset
        from repro.core.pipeline import WellnessClassifier

        dataset = HolistixDataset.build()
        split = dataset.fixed_split()
        classifier = WellnessClassifier("LR").fit(split.train)
        engine = classifier.engine.replicate()
        engine.cache_size = 0
        texts = split.test.texts
        server = InferenceServer(engine, workers=2, max_batch_size=32)
        with server:
            started = time.perf_counter()
            chunks = [texts[i::8] for i in range(8)]
            threads = [
                threading.Thread(target=server.predict, args=(chunk,))
                for chunk in chunks
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            lr_elapsed = time.perf_counter() - started
        result["timings"]["real_lr_serve_s"] = lr_elapsed
        result["metrics"]["real_lr_req_per_sec"] = len(texts) / lr_elapsed

    return result


def scenario_serving_http(quick: bool) -> dict:
    """HTTP gateway overhead versus the in-process serving baseline.

    The same closed-loop workload (concurrent clients, one request in
    flight each, :class:`FixedServiceBackend` underneath) is driven two
    ways against identically configured 2-worker servers: in-process
    ``InferenceServer.submit().result()`` calls, and real loopback HTTP
    ``POST /v1/predict`` requests through the ``ServingGateway`` (JSON
    encode/decode, a TCP connection per request — the worst, naive
    client — request parsing, and the response write all included).

    The primary metric is ``http_vs_inprocess_throughput``: HTTP
    requests/sec over in-process requests/sec.  It is a ratio within
    one run, so the regression gate holds across hardware; a drop means
    the gateway hot path (handler routing, protocol validation,
    counters) got more expensive relative to the engine underneath.
    Latency percentiles are measured at the caller (the HTTP side pays
    the full network round trip, not just engine queue time).
    """
    from repro.engine.engine import PredictionEngine
    from repro.engine.server import InferenceServer
    from repro.serving.client import ServingClient
    from repro.serving.gateway import ServingGateway

    n_clients = 12 if quick else 24
    warmup_s = 0.15 if quick else 0.5
    measure_s = 0.6 if quick else 3.0

    def make_server() -> InferenceServer:
        return InferenceServer(
            PredictionEngine(
                FixedServiceBackend(), model_id="bench-http", cache_size=0
            ),
            workers=2,
            max_batch_size=8,
            max_wait_ms=0.5,
            max_queue=256,
            overload="block",
        )

    inprocess_server = make_server()
    with inprocess_server:
        inprocess = _closed_loop_measure(
            inprocess_server,
            lambda text: inprocess_server.submit(text).result(timeout=30),
            n_clients=n_clients,
            warmup_s=warmup_s,
            measure_s=measure_s,
        )

    http_server = make_server()
    with ServingGateway(http_server) as gateway:
        serving_client = ServingClient(gateway.url, deadline_s=30)
        http = _closed_loop_measure(
            http_server,
            serving_client.predict,
            n_clients=n_clients,
            warmup_s=warmup_s,
            measure_s=measure_s,
        )
        health = serving_client.healthz()
        assert health["status"] == "ok", health
        scraped = serving_client.metrics()
        served = scraped[("holistix_server_requests_total", frozenset())]

    return {
        "n_clients": n_clients,
        "timings": {
            "measure_window_s": measure_s,
            "inprocess_p50_ms": inprocess["p50_ms"],
            "inprocess_p95_ms": inprocess["p95_ms"],
            "http_p50_ms": http["p50_ms"],
            "http_p95_ms": http["p95_ms"],
            "http_p99_ms": http["p99_ms"],
        },
        "metrics": {
            "http_vs_inprocess_throughput": (
                http["throughput"] / inprocess["throughput"]
            ),
            "inprocess_req_per_sec": inprocess["throughput"],
            "http_req_per_sec": http["throughput"],
            "inprocess_mean_batch": inprocess["mean_batch"],
            "http_mean_batch": http["mean_batch"],
            "http_requests_served_total": served,
        },
    }


class SpinServiceBackend:
    """Pure-Python busy loop per text — deliberately GIL-bound.

    Models the worst case for threaded serving: inference that never
    releases the GIL (interpreter-heavy feature extraction, python-loop
    models).  Threads serialise on it; worker processes do not.
    """

    n_classes = 6

    def __init__(self, per_item_ms=0.5):
        self.per_item_ms = per_item_ms

    def proba_batch(self, texts):
        end = time.perf_counter() + self.per_item_ms * len(texts) / 1000.0
        acc = 0
        while time.perf_counter() < end:
            acc += 1
        return np.full((len(texts), 6), 1.0 / 6.0)


def _mp_fixed_engine():
    """Module-level engine factory: picklable for spawn-started workers."""
    from repro.engine.engine import PredictionEngine

    return PredictionEngine(
        FixedServiceBackend(), model_id="bench-mp", cache_size=0
    )


def _mp_spin_engine():
    from repro.engine.engine import PredictionEngine

    return PredictionEngine(
        SpinServiceBackend(), model_id="bench-mp-spin", cache_size=0
    )


def scenario_serving_mp(quick: bool) -> dict:
    """Scaling and overhead of the multi-process serving backend.

    Primary metric ``process_worker_scaling``: closed-loop throughput of
    a 4-process :class:`~repro.engine.procserver.ProcessInferenceServer`
    over a 1-process one, both serving the fixed-service-time stub via
    ``from_factory``.  The stub sleeps (as GIL-releasing native kernels
    do), so independent worker processes overlap service time even on
    one core — exactly like ``serving_load``'s thread scaling — and the
    ratio isolates the dispatch path: if per-batch IPC, pickling, or the
    per-slot locks serialised the workers, scaling would collapse to
    ~1x regardless of hardware.

    Two ungated secondaries contextualise the tentpole:

    * ``mp_vs_thread_throughput`` — the same workload on a threaded
      ``InferenceServer``, measuring what crossing a process boundary
      costs when the GIL is *not* the bottleneck (expected < 1.0: pipes
      and pickling are pure overhead there).
    * ``spin_process_vs_thread`` — a pure-Python busy-loop backend,
      thread- vs process-served.  This is the break-the-GIL case: on
      ``N >= 2`` spare cores processes win roughly min(workers, cores)×;
      on a single-core runner it sits near 1.0, which is why it is
      recorded (with ``cpu_count``) but not regression-gated.
    """
    from repro.engine.engine import PredictionEngine
    from repro.engine.procserver import ProcessInferenceServer
    from repro.engine.server import InferenceServer

    n_clients = 24 if quick else 32
    warmup_s = 0.15 if quick else 0.5
    measure_s = 0.6 if quick else 3.0

    def run_mp(workers: int, factory=_mp_fixed_engine) -> dict:
        server = ProcessInferenceServer.from_factory(
            factory,
            workers=workers,
            max_batch_size=8,
            max_wait_ms=0.5,
            max_queue=256,
            overload="block",
        )
        with server:
            server.wait_ready(timeout=60)
            return _closed_loop_measure(
                server,
                lambda text: server.submit(text).result(timeout=30),
                n_clients=n_clients,
                warmup_s=warmup_s,
                measure_s=measure_s,
            )

    def run_threaded(workers: int, backend_cls=FixedServiceBackend) -> dict:
        server = InferenceServer(
            PredictionEngine(backend_cls(), model_id="bench-mt", cache_size=0),
            workers=workers,
            max_batch_size=8,
            max_wait_ms=0.5,
            max_queue=256,
            overload="block",
        )
        with server:
            return _closed_loop_measure(
                server,
                lambda text: server.submit(text).result(timeout=30),
                n_clients=n_clients,
                warmup_s=warmup_s,
                measure_s=measure_s,
            )

    single = run_mp(1)
    scaled = run_mp(4)
    threaded = run_threaded(4)

    # GIL-bound spin workload: thread pool vs process pool, batch size 1
    # so every request is its own GIL-holding unit of work.
    spin_clients = 8
    spin_measure = 0.5 if quick else 2.0

    def run_spin(make_server) -> dict:
        server = make_server()
        with server:
            if hasattr(server, "wait_ready"):
                server.wait_ready(timeout=60)
            return _closed_loop_measure(
                server,
                lambda text: server.submit(text).result(timeout=30),
                n_clients=spin_clients,
                warmup_s=warmup_s,
                measure_s=spin_measure,
            )

    spin_threads = run_spin(
        lambda: InferenceServer(
            PredictionEngine(
                SpinServiceBackend(), model_id="spin-mt", cache_size=0
            ),
            workers=2,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=256,
            overload="block",
        )
    )
    spin_procs = run_spin(
        lambda: ProcessInferenceServer.from_factory(
            _mp_spin_engine,
            workers=2,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=256,
            overload="block",
        )
    )

    return {
        "n_clients": n_clients,
        "timings": {
            "measure_window_s": measure_s,
            "procs1_p50_ms": single["p50_ms"],
            "procs1_p95_ms": single["p95_ms"],
            "procs4_p50_ms": scaled["p50_ms"],
            "procs4_p95_ms": scaled["p95_ms"],
            "procs4_p99_ms": scaled["p99_ms"],
            "threads4_p50_ms": threaded["p50_ms"],
        },
        "metrics": {
            "process_worker_scaling": scaled["throughput"] / single["throughput"],
            "procs1_req_per_sec": single["throughput"],
            "procs4_req_per_sec": scaled["throughput"],
            "procs4_mean_batch": scaled["mean_batch"],
            "mp_vs_thread_throughput": (
                scaled["throughput"] / threaded["throughput"]
            ),
            "spin_thread_req_per_sec": spin_threads["throughput"],
            "spin_process_req_per_sec": spin_procs["throughput"],
            "spin_process_vs_thread": (
                spin_procs["throughput"] / spin_threads["throughput"]
            ),
        },
    }


class StallingBackend(FixedServiceBackend):
    """``FixedServiceBackend`` plus one whole-server pause.

    After ``stall_after`` served items the next call opens a global
    stall window of ``stall_s`` seconds; *every* ``proba_batch`` call —
    from any worker replica — blocks until the window closes.  That
    models the pauses that dominate real tails (GC, page fault, device
    contention, a checkpoint fsync), which freeze the process rather
    than one worker thread, and it is what makes the coordinated-
    omission demonstration honest: a per-thread sleep would be quietly
    absorbed by the surviving replicas.
    """

    def __init__(self, stall_after=100, stall_s=0.5, **kwargs):
        super().__init__(**kwargs)
        self.stall_after = stall_after
        self.stall_s = stall_s
        self._served = 0
        self._stall_until: float | None = None
        self._lock = threading.Lock()

    def proba_batch(self, texts):
        with self._lock:
            self._served += len(texts)
            if self._stall_until is None and self._served >= self.stall_after:
                self._stall_until = time.monotonic() + self.stall_s
            until = self._stall_until
        if until is not None:
            now = time.monotonic()
            if now < until:
                time.sleep(until - now)
        return super().proba_batch(texts)


def scenario_serving_tail(quick: bool) -> dict:
    """Open-loop tail latency, and the lie closed-loop measurement tells.

    Three legs, all fed by synthetic documents streamed from the
    :class:`~repro.corpus.factory.CorpusFactory` (whose docs/sec is
    recorded as an ungated secondary):

    1. **Clean open loop** — a seeded Poisson schedule at fixed offered
       rate against a 2-worker ``InferenceServer`` over the fixed-
       service-time stub.  Latency is charged from each request's
       *intended* send time into an HDR-style histogram; the primary
       metric is this leg's p99.
    2. **HTTP open loop** — the same methodology through a loopback
       ``ServingGateway`` via ``ServingClient.predict(...,
       intended_at=...)``, so the recorded tail includes connection
       setup, JSON, and the gateway hot path.
    3. **Injected stall, closed vs open** — identical servers with a
       :class:`StallingBackend` whole-server pause, measured once with
       naive closed-loop clients and once open loop at fixed offered
       rate.  ``coordinated_omission_p99_gap`` is the ratio of the two
       p99s: how much the closed-loop methodology under-reports the
       stall.  Regression-tested ≥ 2× (it is ~two orders of magnitude
       in practice).

    The full histograms for every leg are written next to the record as
    ``serving_tail_histogram.json`` (uploaded as a CI artifact), so two
    runs can be compared bucket by bucket, not just at the recorded
    percentiles.
    """
    from repro.corpus.factory import CorpusFactory
    from repro.engine.engine import PredictionEngine
    from repro.engine.server import InferenceServer
    from repro.loadgen import (
        fixed_rate_schedule,
        poisson_schedule,
        run_closed_loop,
        run_open_loop,
    )
    from repro.serving.client import ServingClient
    from repro.serving.gateway import ServingGateway

    seed = 1307
    corpus_n = 20_000 if quick else 100_000
    started = time.perf_counter()
    texts = CorpusFactory().texts(seed, corpus_n)
    corpus_s = time.perf_counter() - started

    def make_server(backend) -> InferenceServer:
        return InferenceServer(
            PredictionEngine(backend, model_id="bench-tail", cache_size=0),
            workers=2,
            max_batch_size=8,
            max_wait_ms=0.5,
            max_queue=512,
            overload="block",
        )

    rate = 150.0 if quick else 250.0
    duration_s = 2.0 if quick else 5.0

    # Leg 1: clean open loop at fixed offered rate.  The stub's sleep
    # is sized to dominate the measured p99 (~10 ms of deterministic
    # service vs ~1 ms of scheduler jitter) so the gated absolute
    # number is a property of the scenario, not of the host.
    clean_server = make_server(FixedServiceBackend(per_batch_ms=10.0, per_item_ms=0.5))
    with clean_server:
        open_clean = run_open_loop(
            poisson_schedule(rate, duration_s=duration_s, seed=seed),
            lambda text, at: clean_server.submit(text).result(timeout=30),
            texts,
            max_in_flight=64,
            deadline_s=10.0,
        )
    if open_clean.failed or open_clean.dropped:
        raise AssertionError(
            f"clean open-loop leg lost requests: {open_clean.summary()}"
        )

    # Leg 2: the same methodology through the HTTP gateway.
    http_rate = 60.0 if quick else 120.0
    http_duration_s = 1.5 if quick else 4.0
    http_server = make_server(FixedServiceBackend())
    with ServingGateway(http_server) as gateway:
        client = ServingClient(gateway.url, deadline_s=10.0)
        client.wait_ready(deadline_s=10.0)
        open_http = run_open_loop(
            poisson_schedule(http_rate, duration_s=http_duration_s, seed=seed + 1),
            lambda text, at: client.predict(text, intended_at=at),
            texts,
            max_in_flight=32,
            deadline_s=10.0,
        )
    if open_http.failed or open_http.dropped:
        raise AssertionError(
            f"HTTP open-loop leg lost requests: {open_http.summary()}"
        )

    # Leg 3: the injected whole-server stall, measured both ways.  The
    # light per-call service time keeps both measurements far from
    # saturation so the stall is the only tail event.
    stall_s = 0.4 if quick else 0.8

    def stalled_server() -> InferenceServer:
        return make_server(
            StallingBackend(
                stall_after=100, stall_s=stall_s, per_batch_ms=0.5, per_item_ms=0.1
            )
        )

    closed_server = stalled_server()
    with closed_server:
        closed_stall = run_closed_loop(
            lambda text, at: closed_server.submit(text).result(timeout=30),
            texts,
            n_clients=4,
            duration_s=duration_s,
        )
    open_server = stalled_server()
    with open_server:
        open_stall = run_open_loop(
            fixed_rate_schedule(rate, duration_s=duration_s, seed=seed),
            lambda text, at: open_server.submit(text).result(timeout=30),
            texts,
            max_in_flight=256,
            deadline_s=10.0,
        )
    gap = open_stall.p99_ms / closed_stall.p99_ms

    return {
        "n_docs": corpus_n,
        "timings": {
            "corpus_build_s": corpus_s,
            "open_loop_p50_ms": open_clean.p50_ms,
            "open_loop_p95_ms": open_clean.p95_ms,
            "open_loop_p999_ms": open_clean.p999_ms,
            "http_open_p50_ms": open_http.p50_ms,
            "http_open_p99_ms": open_http.p99_ms,
            "closed_stall_p99_ms": closed_stall.p99_ms,
            "open_stall_p99_ms": open_stall.p99_ms,
        },
        "metrics": {
            "open_loop_p99_ms": open_clean.p99_ms,
            "offered_rate_rps": open_clean.offered_rate_rps,
            "achieved_rate_rps": open_clean.achieved_rate_rps,
            "completed": open_clean.completed,
            "failed": open_clean.failed,
            "dropped": open_clean.dropped,
            "http_offered_rate_rps": open_http.offered_rate_rps,
            "http_achieved_rate_rps": open_http.achieved_rate_rps,
            "coordinated_omission_p99_gap": gap,
            "corpus_docs_per_sec": corpus_n / corpus_s,
        },
        "artifacts": {
            "serving_tail_histogram.json": {
                "scenario": "serving_tail",
                "note": (
                    "full latency histograms per leg; buckets grow "
                    "geometrically (see repro.loadgen.histogram)"
                ),
                "legs": {
                    "open_clean": open_clean.histogram.to_dict(),
                    "open_http": open_http.histogram.to_dict(),
                    "closed_stall": closed_stall.histogram.to_dict(),
                    "open_stall": open_stall.histogram.to_dict(),
                },
            }
        },
    }


# The committed fault plan replayed by ``serving_chaos``.  The seed and
# parameters are the reproducibility contract: the scenario refuses to
# run if ``benchmarks/plans/serving_chaos.json`` no longer matches what
# these values regenerate, so the record can never silently describe a
# different storm than the one in version control.
CHAOS_PLAN_SEED = 1307
CHAOS_PLAN_PARAMS = dict(
    duration_s=4.0,
    workers=2,
    crashes=1,
    stalls=1,
    stall_s=0.4,
    socket_bursts=1,
    burst_window_s=0.3,
    burst_count=5,
)
CHAOS_PLAN_PATH = REPO_ROOT / "benchmarks" / "plans" / "serving_chaos.json"


def _chaos_engine_factory():
    """Module-level engine factory: picklable for spawn-started workers."""
    from repro.engine.engine import PredictionEngine

    return PredictionEngine(
        FixedServiceBackend(per_batch_ms=5.0, per_item_ms=0.2),
        model_id="bench-chaos",
        cache_size=0,
    )


def scenario_serving_chaos(quick: bool) -> dict:
    """Replay the committed fault plan and gate on recovery, not speed.

    Boots the full production stack — ``ProcessInferenceServer`` (two
    spawn-started worker processes under the background supervisor)
    behind a loopback ``ServingGateway``, driven by a resilient
    ``ServingClient`` — then runs three open-loop Poisson legs:

    1. **Baseline** — clean traffic; its p99 is the recovery yardstick.
    2. **Chaos** — arms ``benchmarks/plans/serving_chaos.json`` (a
       worker SIGKILL, a worker stall, and a burst of socket-level
       response faults, all seeded and committed) and keeps offering
       load for the plan's full duration.
    3. **Recovery** — after the supervisor reports every worker slot
       alive again, the baseline workload repeats.

    Gated invariants, all checked in-run: chaos-leg availability
    ``>= 0.99`` (client retries and the supervisor must absorb the
    storm; deadline sheds are credited back — shedding is policy, not
    failure), recovery p99 within 2x baseline (with a small absolute
    floor for scheduler noise), at least one supervised worker respawn,
    every planned fault kind actually applied, and zero orphaned worker
    processes after shutdown.  The primary metric is the chaos-leg
    availability; per-leg histograms and the injector's fired-fault
    timeline land in ``serving_chaos_histogram.json``.
    """
    from repro.chaos import FaultInjector, FaultPlan
    from repro.corpus.factory import CorpusFactory
    from repro.engine.procserver import ProcessInferenceServer
    from repro.loadgen import poisson_schedule, run_open_loop
    from repro.serving.client import ServingClient
    from repro.serving.gateway import ServingGateway

    seed = CHAOS_PLAN_SEED
    corpus_n = 4_000 if quick else 12_000
    started = time.perf_counter()
    texts = CorpusFactory().texts(seed, corpus_n)
    corpus_s = time.perf_counter() - started

    plan = FaultPlan.load(CHAOS_PLAN_PATH)
    regenerated = FaultPlan.generate(CHAOS_PLAN_SEED, **CHAOS_PLAN_PARAMS)
    if plan.timeline() != regenerated.timeline():
        raise AssertionError(
            "benchmarks/plans/serving_chaos.json does not match the plan "
            f"regenerated from seed {CHAOS_PLAN_SEED}; regenerate the "
            "committed plan or fix CHAOS_PLAN_PARAMS"
        )

    rate = 80.0 if quick else 120.0
    leg_s = 1.5 if quick else 3.0
    chaos_s = plan.duration_s + 1.0
    seen_pids: set[int] = set()

    def note_pids(server) -> tuple[int, int]:
        """Record live worker pids; returns (alive, restarts_total)."""
        alive = 0
        restarts = 0
        for report in server.worker_processes():
            if report["pid"] is not None:
                seen_pids.add(report["pid"])
            alive += 1 if report["alive"] else 0
            restarts += report["restarts"]
        return alive, restarts

    server = ProcessInferenceServer.from_factory(
        _chaos_engine_factory,
        model_id="bench-chaos",
        workers=2,
        max_batch_size=8,
        max_wait_ms=0.5,
        max_queue=512,
        overload="block",
        supervisor_interval_s=0.1,
        respawn_backoff_base_s=0.05,
    )
    injector = FaultInjector(plan)
    with ServingGateway(server) as gateway:
        client = ServingClient(
            gateway.url,
            deadline_s=10.0,
            retry_seed=seed,
            breaker_threshold=8,
        )
        client.wait_ready(deadline_s=30.0)

        baseline = run_open_loop(
            poisson_schedule(rate, duration_s=leg_s, seed=seed),
            lambda text, at: client.predict(text, intended_at=at),
            texts,
            max_in_flight=128,
            deadline_s=10.0,
        )
        if baseline.failed or baseline.dropped:
            raise AssertionError(
                f"chaos baseline leg lost requests: {baseline.summary()}"
            )
        note_pids(server)

        # The storm: arm the committed plan and keep offering load for
        # its whole duration.  The resilient client may retry through
        # socket faults; the supervisor must replace the SIGKILLed
        # worker; nothing here is allowed to need manual intervention.
        sheds_before = server.stats.snapshot().deadline_shed
        gateway.arm_chaos(injector)
        chaos_leg = run_open_loop(
            poisson_schedule(rate, duration_s=chaos_s, seed=seed + 1),
            lambda text, at: client.predict(text, intended_at=at),
            texts,
            max_in_flight=256,
            deadline_s=10.0,
        )
        gateway.disarm_chaos()
        deadline_sheds = server.stats.snapshot().deadline_shed - sheds_before
        note_pids(server)

        # Shedding under pressure is policy, not failure: requests the
        # gateway turned away because their budget could not cover the
        # observed service time are credited back before gating.
        availability = (
            (chaos_leg.completed + deadline_sheds) / chaos_leg.scheduled
            if chaos_leg.scheduled
            else 1.0
        )
        if availability < 0.99:
            raise AssertionError(
                f"chaos-leg availability {availability:.4f} < 0.99: "
                f"{chaos_leg.summary()}"
            )

        # Wait (read-only — no revival probes, the supervisor alone must
        # do the work) until every worker slot is alive again.
        recovery_wait_started = time.perf_counter()
        recovery_deadline = recovery_wait_started + 15.0
        while True:
            alive, restarts_total = note_pids(server)
            if alive == server.workers:
                break
            if time.perf_counter() > recovery_deadline:
                raise AssertionError(
                    "workers did not recover within 15s of the storm: "
                    f"{server.worker_processes()}"
                )
            time.sleep(0.05)
        recovery_wait_s = time.perf_counter() - recovery_wait_started
        if restarts_total < 1:
            raise AssertionError(
                "no supervised respawn happened; the plan's worker_crash "
                "never bit or the supervisor is dead"
            )

        recovery = run_open_loop(
            poisson_schedule(rate, duration_s=leg_s, seed=seed + 2),
            lambda text, at: client.predict(text, intended_at=at),
            texts,
            max_in_flight=128,
            deadline_s=10.0,
        )
        if recovery.failed or recovery.dropped:
            raise AssertionError(
                f"chaos recovery leg lost requests: {recovery.summary()}"
            )
        note_pids(server)
        client_stats = client.stats()

    # Recovery must return to baseline tail behaviour.  The absolute
    # floor keeps a 3 ms-vs-1.4 ms scheduler wobble from failing a gate
    # that exists to catch seconds-long degradation.
    recovery_ceiling_ms = max(2.0 * baseline.p99_ms, 250.0)
    if recovery.p99_ms > recovery_ceiling_ms:
        raise AssertionError(
            f"post-fault recovery p99 {recovery.p99_ms:.1f}ms exceeds "
            f"{recovery_ceiling_ms:.1f}ms (2x baseline "
            f"{baseline.p99_ms:.1f}ms, 250ms floor)"
        )

    applied = injector.applied_counts()
    missing = sorted(set(plan.kinds()) - set(applied))
    if missing:
        raise AssertionError(
            f"planned fault kinds never applied: {missing} "
            f"(applied: {applied}, fired: {injector.fired_log()})"
        )

    # Every worker pid observed during the run must be gone once the
    # stack is stopped — SIGKILLed originals, supervised replacements,
    # and the final generation alike.
    orphan_deadline = time.monotonic() + 5.0
    orphans = set(seen_pids)
    while orphans and time.monotonic() < orphan_deadline:
        for pid in sorted(orphans):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                orphans.discard(pid)
            except PermissionError:
                pass  # still alive under another uid: counts as orphaned
        if orphans:
            time.sleep(0.1)
    if orphans:
        raise AssertionError(
            f"worker processes survived shutdown: {sorted(orphans)}"
        )

    return {
        "n_docs": corpus_n,
        "timings": {
            "corpus_build_s": corpus_s,
            "baseline_p50_ms": baseline.p50_ms,
            "baseline_p99_ms": baseline.p99_ms,
            "chaos_p50_ms": chaos_leg.p50_ms,
            "chaos_p99_ms": chaos_leg.p99_ms,
            "recovery_p50_ms": recovery.p50_ms,
            "recovery_p99_ms": recovery.p99_ms,
            "recovery_wait_s": recovery_wait_s,
        },
        "metrics": {
            "chaos_availability": availability,
            "chaos_scheduled": chaos_leg.scheduled,
            "chaos_completed": chaos_leg.completed,
            "chaos_failed": chaos_leg.failed,
            "chaos_dropped": chaos_leg.dropped,
            "deadline_sheds": deadline_sheds,
            "worker_restarts": restarts_total,
            "recovery_p99_ratio": (
                recovery.p99_ms / baseline.p99_ms if baseline.p99_ms else 1.0
            ),
            "client_retries": client_stats["retries"],
            "client_transport_failures": client_stats["transport_failures"],
            "injected_faults": sum(applied.values()),
            "orphan_processes": 0,
        },
        "artifacts": {
            "serving_chaos_histogram.json": {
                "scenario": "serving_chaos",
                "note": (
                    "per-leg latency histograms plus the injector's "
                    "fired-fault timeline for the committed plan"
                ),
                "plan": {
                    "seed": CHAOS_PLAN_SEED,
                    "params": dict(CHAOS_PLAN_PARAMS),
                    "timeline": [list(entry) for entry in plan.timeline()],
                },
                "applied_counts": applied,
                "fired_log": [list(entry) for entry in injector.fired_log()],
                "error_types": dict(chaos_leg.error_types),
                "legs": {
                    "baseline": baseline.histogram.to_dict(),
                    "chaos": chaos_leg.histogram.to_dict(),
                    "recovery": recovery.histogram.to_dict(),
                },
            }
        },
    }


class _SummedServerStats:
    """Duck-types the slice of a server ``_closed_loop_measure`` reads.

    The fleet leg spreads traffic across two primary servers; throughput
    must come from the sum of their stats deltas, so this shim presents
    them as one ``server.stats.snapshot()`` surface.
    """

    class _Stats:
        def __init__(self, servers) -> None:
            self._servers = servers

        def snapshot(self):
            import types

            snaps = [server.stats.snapshot() for server in self._servers]
            requests = sum(s.requests for s in snaps)
            batches = sum(s.batches for s in snaps)
            return types.SimpleNamespace(
                requests=requests,
                batches=batches,
                mean_batch_size=requests / batches if batches else 0.0,
            )

    def __init__(self, servers) -> None:
        self.stats = self._Stats(servers)


def scenario_serving_fleet(quick: bool) -> dict:
    """Fleet control-plane overhead versus single-model serving.

    The same closed-loop HTTP workload is driven against two gateways:
    one bare ``InferenceServer`` (the pre-fleet shape, compat-wrapped as
    a one-entry fleet), and a three-entry fleet — champion/challenger at
    a 90/10 A/B split plus a shadow entry that re-scores every answered
    request.  All entries sit on identically configured 2-worker servers
    over :class:`FixedServiceBackend`.

    The primary metric is ``fleet_vs_single_throughput``: fleet HTTP
    requests/sec over single-model requests/sec, within one run.  The
    committed record plus the tight ``SCENARIO_TOLERANCE`` entry gate
    the fleet tax (routing hash, per-entry bookkeeping, shadow fan-out)
    at ≤5%; a hard in-run floor catches catastrophic regressions even
    on a first record.  The A/B split observed by the per-model
    Prometheus counters and the shadow coverage ratio are recorded
    alongside as correctness evidence.
    """
    from repro.engine.engine import PredictionEngine
    from repro.engine.server import InferenceServer
    from repro.serving.client import ServingClient
    from repro.serving.fleet import ModelEntry, ModelFleet
    from repro.serving.gateway import ServingGateway

    n_clients = 12 if quick else 24
    warmup_s = 0.15 if quick else 0.5
    measure_s = 0.6 if quick else 3.0

    def make_server(name: str, overload: str = "block") -> InferenceServer:
        return InferenceServer(
            PredictionEngine(
                FixedServiceBackend(), model_id=f"bench-{name}", cache_size=0
            ),
            workers=2,
            max_batch_size=8,
            max_wait_ms=0.5,
            max_queue=256,
            overload=overload,
        )

    single_server = make_server("single")
    with ServingGateway(single_server) as gateway:
        serving_client = ServingClient(gateway.url, deadline_s=30)
        single = _closed_loop_measure(
            single_server,
            serving_client.predict,
            n_clients=n_clients,
            warmup_s=warmup_s,
            measure_s=measure_s,
        )

    champion = make_server("champion")
    challenger = make_server("challenger")
    # The shadow sheds rather than blocks: mirrored traffic must never
    # apply backpressure to the primary path.
    mirror = make_server("mirror", overload="shed")
    fleet_obj = ModelFleet(
        [
            ModelEntry("champion", champion, weight=0.9),
            ModelEntry("challenger", challenger, weight=0.1),
            ModelEntry("mirror", mirror, shadow=True),
        ]
    )
    with ServingGateway(fleet_obj) as gateway:
        serving_client = ServingClient(gateway.url, deadline_s=30)
        fleet = _closed_loop_measure(
            _SummedServerStats([champion, challenger]),
            serving_client.predict,
            n_clients=n_clients,
            warmup_s=warmup_s,
            measure_s=measure_s,
        )
        scraped = serving_client.metrics()

        def model_requests(name: str) -> float:
            return scraped.get(
                ("holistix_requests_total", frozenset({("model", name)})), 0.0
            )

        champ_total = model_requests("champion")
        chall_total = model_requests("challenger")
        mirror_total = model_requests("mirror")
        shadow_counts = fleet_obj.shadow_counts()

    primary_total = champ_total + chall_total
    ratio = fleet["throughput"] / single["throughput"]
    # Catastrophic-regression floor; the committed record enforces the
    # fine-grained ≤5% gate via SCENARIO_TOLERANCE.
    assert ratio >= 0.80, (
        f"fleet serving collapsed vs single-model: {ratio:.3f}x "
        f"({fleet['throughput']:.0f} vs {single['throughput']:.0f} req/s)"
    )
    assert primary_total > 0, "fleet leg served no primary traffic"
    challenger_share = chall_total / primary_total
    assert 0.02 <= challenger_share <= 0.25, (
        f"A/B split drifted from 90/10: challenger share "
        f"{challenger_share:.1%} over {primary_total:.0f} requests"
    )

    return {
        "n_clients": n_clients,
        "timings": {
            "measure_window_s": measure_s,
            "single_p50_ms": single["p50_ms"],
            "single_p95_ms": single["p95_ms"],
            "fleet_p50_ms": fleet["p50_ms"],
            "fleet_p95_ms": fleet["p95_ms"],
            "fleet_p99_ms": fleet["p99_ms"],
        },
        "metrics": {
            "fleet_vs_single_throughput": ratio,
            "single_req_per_sec": single["throughput"],
            "fleet_req_per_sec": fleet["throughput"],
            "challenger_traffic_share": challenger_share,
            "shadow_coverage": (
                mirror_total / primary_total if primary_total else 0.0
            ),
            "shadow_submitted": float(shadow_counts["submitted"]),
            "shadow_failed": float(shadow_counts["failed"]),
        },
    }


# name -> (runner, primary metric key, higher is better).  Primary
# metrics are mostly ratios measured within one run, so the regression
# check stays meaningful when the committed record and CI run on
# different hardware; absolute docs/sec numbers are recorded alongside.
# ``serving_tail`` gates an absolute p99, defensible because the
# sleep-based service stub (not hardware speed) dominates it, and its
# widened ``SCENARIO_TOLERANCE`` entry absorbs scheduler jitter.
SCENARIOS: dict[str, tuple] = {
    "tfidf": (scenario_tfidf, "transform_speedup_vs_legacy", True),
    "traditional": (scenario_traditional, "sparse_speedup_vs_dense", True),
    "engine": (scenario_engine, "cache_speedup", True),
    "table4": (scenario_table4, "jobs4_speedup", True),
    "transformer": (scenario_transformer, "fused_speedup", True),
    "serving_load": (scenario_serving_load, "worker_scaling", True),
    "serving_http": (scenario_serving_http, "http_vs_inprocess_throughput", True),
    "serving_mp": (scenario_serving_mp, "process_worker_scaling", True),
    "serving_tail": (scenario_serving_tail, "open_loop_p99_ms", False),
    "serving_chaos": (scenario_serving_chaos, "chaos_availability", True),
    "serving_fleet": (scenario_serving_fleet, "fleet_vs_single_throughput", True),
}


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def record_path(scenario: str, out_dir: Path) -> Path:
    return out_dir / f"BENCH_{scenario}.json"


def load_previous(scenario: str, out_dir: Path) -> dict | None:
    path = record_path(scenario, out_dir)
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def compare(scenario: str, record: dict, previous: dict | None) -> tuple[str, bool]:
    """Human-readable delta vs the previous record and a regression flag."""
    _, key, higher_better = SCENARIOS[scenario]
    current = record["metrics"][key]
    if previous is None:
        return f"{scenario}: {key}={current:.1f} (first record)", False
    if previous.get("quick") != record.get("quick"):
        # Quick and full runs measure different workloads; comparing
        # them would flag sizing changes as perf regressions.
        return (
            f"{scenario}: {key}={current:.1f} "
            "(previous record used a different sizing; not compared)",
            False,
        )
    prior = previous.get("metrics", {}).get(key)
    if prior is None or prior == 0:
        return f"{scenario}: {key}={current:.1f} (no prior {key})", False
    tolerance = SCENARIO_TOLERANCE.get(scenario, REGRESSION_TOLERANCE)
    ratio = current / prior if higher_better else prior / current
    regressed = ratio < (1.0 - tolerance)
    arrow = "regressed" if regressed else ("improved" if ratio > 1.0 else "held")
    return (
        f"{scenario}: {key} {prior:.1f} -> {current:.1f} "
        f"({ratio:.2f}x vs {previous.get('git_sha', '?')[:8]}, {arrow})",
        regressed,
    )


def run_scenario(scenario: str, *, quick: bool, out_dir: Path) -> tuple[dict, bool]:
    """Run one scenario, persist its record, return (record, regressed)."""
    runner, _, _ = SCENARIOS[scenario]
    previous = load_previous(scenario, out_dir)
    started = time.perf_counter()
    result = runner(quick)
    # Sidecar artifacts (e.g. full latency histograms) are written next
    # to the record but kept out of it: BENCH_*.json stays small enough
    # to diff in review, and the sidecar carries the bulk data CI
    # uploads as a workflow artifact.
    artifacts: dict = result.pop("artifacts", {})
    result_record = {
        "scenario": scenario,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": _git_sha(),
        "quick": quick,
        "cpu_count": os.cpu_count() or 1,
        "harness_wall_clock_s": time.perf_counter() - started,
        **result,
    }
    summary, regressed = compare(scenario, result_record, previous)
    if previous is not None:
        result_record["previous"] = {
            "git_sha": previous.get("git_sha"),
            "timestamp": previous.get("timestamp"),
            "metrics": previous.get("metrics"),
        }
    if artifacts:
        result_record["artifacts"] = sorted(artifacts)
    out_dir.mkdir(parents=True, exist_ok=True)
    record_path(scenario, out_dir).write_text(
        json.dumps(result_record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    for name, payload in artifacts.items():
        (out_dir / name).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    print(summary)
    if regressed:
        _annotate_regression(scenario, summary)
    return result_record, regressed


def _annotate_regression(scenario: str, summary: str) -> None:
    """Make a regression visible on GitHub, not just a red cron run.

    Scheduled workflow failures notify nobody by default; a
    ``::error`` workflow command surfaces the regression as an
    annotation on the run summary page (and on the PR's checks tab for
    pull-request runs).  The ``benchmark-table4`` job additionally
    opens/updates a pinned tracking issue from this annotation's text.
    """
    if os.environ.get("GITHUB_ACTIONS") != "true":
        return
    message = summary.replace("%", "%25").replace("\n", "%0A")
    print(
        f"::error title=Benchmark regression ({scenario})::{message}",
        flush=True,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.harness",
        description="Run named perf scenarios and persist BENCH_*.json records.",
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        choices=[*SCENARIOS, "all"],
        default="all",
        help="which scenarios to run (default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI sizing: smaller corpora/suites"
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=DEFAULT_OUT_DIR,
        help=f"record directory (default: {DEFAULT_OUT_DIR})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when a scenario regressed vs its previous record",
    )
    args = parser.parse_args(argv)

    requested = args.scenarios if isinstance(args.scenarios, list) else ["all"]
    if not requested or "all" in requested:
        requested = list(SCENARIOS)

    any_regressed = False
    for scenario in requested:
        _, regressed = run_scenario(
            scenario, quick=args.quick, out_dir=args.out_dir
        )
        any_regressed = any_regressed or regressed
    if args.check and any_regressed:
        print("benchmark regression detected", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
