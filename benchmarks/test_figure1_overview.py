"""E6 — Fig. 1: classify a narrative and surface its wellness dimensions."""

from repro.core.pipeline import WellnessClassifier
from repro.experiments.figure1 import format_figure1, run_figure1


def test_figure1_overview(benchmark, dataset):
    split = dataset.fixed_split()
    classifier = WellnessClassifier("LR").fit(split.train)
    result = benchmark.pedantic(
        lambda: run_figure1(dataset, classifier=classifier),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_figure1(result))
    assert result.gold_span in result.text
    assert result.candidate_dimensions
    assert result.explanation_keywords
