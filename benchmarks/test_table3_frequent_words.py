"""E2 — Table III: frequent words in explanation spans.

Regenerates the per-dimension frequent-word profiles and checks they
recover the bulk of the paper's published words.
"""

from repro.experiments.table3 import format_table3, run_table3


def test_table3_frequent_words(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: run_table3(dataset), rounds=3, iterations=1
    )
    print("\n" + format_table3(result))
    shared, total = result.total_overlap()
    # Recover at least three-quarters of the published frequent words.
    assert shared >= int(0.7 * total), (shared, total)
    # Every dimension individually recovers most of its profile.
    for dim in result.profiles:
        overlap, expected = result.overlap(dim)
        assert overlap >= expected - 3, dim
