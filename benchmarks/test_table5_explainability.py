"""E4 — Table V: LIME explainability of LR and MentalBERT.

Explains test posts with from-scratch LIME for the paper's two top models
and scores the keyword explanations against the gold spans.
"""

from repro.core.pipeline import WellnessClassifier
from repro.experiments.table5 import format_table5, run_table5


def test_table5_explainability(benchmark, dataset):
    split = dataset.fixed_split()
    classifiers = {
        "LR": WellnessClassifier("LR").fit(split.train),
        "MentalBERT": WellnessClassifier("MentalBERT").fit(split.train),
    }
    result = benchmark.pedantic(
        lambda: run_table5(dataset, classifiers=classifiers),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_table5(result))

    lr = result.scores["LR"]
    mb = result.scores["MentalBERT"]
    # The explanations must genuinely align with gold spans, at or above
    # the paper's own absolute level (paper F1: LR 0.42, MentalBERT 0.45;
    # ROUGE 0.36-0.38).
    for score in (lr, mb):
        assert score.f1 > 0.30
        assert score.rouge > 0.30
        assert score.recall > 0.30
    # Both models' keyword explanations stay comparable (within 0.15 F1).
    # Note: the paper has MentalBERT slightly ahead of LR; on this
    # substrate LIME recovers the *linear* model's features a little
    # better, so only comparability is asserted (see EXPERIMENTS.md).
    assert abs(mb.f1 - lr.f1) < 0.15
